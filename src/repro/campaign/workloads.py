"""Workloads for mapping campaigns: a seeded generator + a named corpus.

A :class:`Workload` is one compilable scenario — a loop nest (as parser
source text or a named IR factory), a schedule policy, default size
bindings and a legality flag.  Workloads are plain data: they pickle
across multiprocessing workers and serialize into sweep records, so a
campaign can be reconstructed from its spec alone.

Two producers:

* :func:`generate_workloads` — a seeded random generator of
  structurally valid affine nests (mixed depths 2/3, perfect and
  non-perfect shapes, unimodular / selection / rank-deficient access
  matrices).  Every emitted nest is *validated* before it leaves the
  generator: it parses, its inferred schedule passes
  :func:`~repro.ir.schedule_is_legal` on the bounded domains, and
  :func:`~repro.alignment.two_step_heuristic` completes without
  raising.  The same seed produces a byte-identical corpus.
* :func:`generate_triangular_workloads` — the same validated pipeline
  over the *non-rectangular* shape vocabulary: lower/upper triangular
  and trapezoidal inner loops (``for j = i..N``, ``for j = 0..i``,
  shifted variants), exercising the polyhedral
  :class:`~repro.ir.Domain` layer end to end.  A separate RNG stream,
  so growing this vocabulary never perturbs the rectangular corpora.
* :func:`corpus` — the named nests of the repository: the paper's
  examples (:mod:`repro.ir.examples`) and the kernels of the
  ``examples/*.py`` scripts (matmul, Gaussian elimination, ADI).
* :func:`triangular_corpus` — the classic triangular kernels the
  rectangular IR could not express: LU update, Cholesky,
  back-substitution and a triangular matmul.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ir import (
    LoopNest,
    ScheduledNest,
    outer_sequential_schedules,
    parse_nest,
    trivial_schedules,
)

# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


@dataclass
class Workload:
    """One compilable scenario of a campaign.

    ``schedule`` is a policy string: ``"infer"`` (let the driver infer a
    legal schedule from the dependences), ``"trivial"`` (all-parallel)
    or ``"outer:K"`` (first ``K`` loops sequential).  ``check_legality``
    is off for corpus kernels whose rectangular-hull domains would
    reject the textbook schedule (Gaussian elimination, ADI) — exactly
    how the corresponding ``examples/*.py`` scripts run them.
    """

    name: str
    kind: str = "generated"  # "generated" | "named"
    source: Optional[str] = None
    schedule: str = "infer"
    params: Dict[str, int] = field(default_factory=dict)
    check_legality: bool = True

    def resolve(self) -> LoopNest:
        """Materialize the loop nest IR."""
        if self.source is not None:
            return parse_nest(self.source, name=self.name)
        try:
            factory = _NAMED_FACTORIES[self.name]
        except KeyError:
            raise KeyError(
                f"workload {self.name!r} has no source and is not a known "
                f"named nest ({', '.join(sorted(_NAMED_FACTORIES))})"
            ) from None
        return factory()

    def resolve_schedules(self, nest: LoopNest) -> Optional[ScheduledNest]:
        """Schedules per the policy; ``None`` means "let the driver infer"."""
        if self.schedule == "infer":
            return None
        if self.schedule == "trivial":
            return trivial_schedules(nest)
        if self.schedule.startswith("outer:"):
            return outer_sequential_schedules(nest, int(self.schedule[6:]))
        raise ValueError(f"unknown schedule policy {self.schedule!r}")

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "source": self.source,
            "schedule": self.schedule,
            "params": dict(self.params),
            "check_legality": self.check_legality,
        }

    @staticmethod
    def from_dict(d: Dict) -> "Workload":
        return Workload(
            name=d["name"],
            kind=d.get("kind", "generated"),
            source=d.get("source"),
            schedule=d.get("schedule", "infer"),
            params=dict(d.get("params", {})),
            check_legality=bool(d.get("check_legality", True)),
        )


# ---------------------------------------------------------------------------
# Named corpus
# ---------------------------------------------------------------------------

_MATMUL_SRC = """array a(2), b(2), c(2)
for i = 0..N:
  for j = 0..N:
    for k = 0..N:
      S: c[i, j] = f(a[i, k], b[k, j], c[i, j])
"""

_GAUSS_SRC = """array A(2)
for k = 1..N:
  for i = 1..N:
    for j = 1..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j], A[k, k])
"""

_ADI_SRC = """array u(2), v(2)
for t = 1..T:
  for i = 1..N:
    for j = 1..N:
      Srow: v[i, j] = f(u[i, j], u[i, j-1], u[i, j+1])
  for i = 1..N:
    for j = 1..N:
      Scol: u[j, i] = g(v[j, i], v[j-1, i], v[j+1, i])
"""


def _named_factories() -> Dict[str, Callable[[], LoopNest]]:
    from ..ir import (
        broadcast_example,
        gather_example,
        motivating_example,
        platonoff_example,
        reduction_example,
    )

    return {
        "example1": motivating_example,
        "broadcast": broadcast_example,
        "gather": gather_example,
        "reduction": reduction_example,
        "example5": platonoff_example,
    }


_NAMED_FACTORIES = _named_factories()


# -- triangular kernels: the nests the rectangular IR shut out ------------

_TRI_LU_SRC = """array A(2)
for k = 1..N:
  for i = k..N:
    for j = k..N:
      S: A[i, j] = f(A[i, j], A[i, k], A[k, j])
"""

_TRI_CHOLESKY_SRC = """array L(2)
for k = 1..N:
  for i = k..N:
    S1: L[i, k] = f(L[i, k], L[k, k])
    for j = k..i:
      S2: L[i, j] = g(L[i, j], L[i, k], L[j, k])
"""

_TRI_BACKSUB_SRC = """array x(1), b(1), L(2)
for i = 1..N:
  S1: x[i] = f(b[i])
  for j = 1..i-1:
    S2: x[i] = g(x[i], L[i, j], x[j])
"""

_TRI_MATMUL_SRC = """array a(2), b(2), c(2)
for i = 0..N:
  for j = i..N:
    for k = 0..N:
      S: c[i, j] = f(a[i, k], b[k, j], c[i, j])
"""


def triangular_corpus() -> List[Workload]:
    """The classic triangular/trapezoidal kernels as campaign workloads.

    ``check_legality`` is off for the factorizations whose textbook
    outer-sequential schedule conflicts within a step (the Gaussian
    elimination / ADI precedent of :func:`corpus`); the triangular
    matmul infers a legal schedule on its true polyhedral domain.
    """
    return [
        Workload(
            name="tri-matmul", kind="named", source=_TRI_MATMUL_SRC,
            schedule="infer", params={"N": 3},
        ),
        Workload(
            name="lu", kind="named", source=_TRI_LU_SRC,
            schedule="outer:1", params={"N": 3}, check_legality=False,
        ),
        Workload(
            name="cholesky", kind="named", source=_TRI_CHOLESKY_SRC,
            schedule="outer:1", params={"N": 3}, check_legality=False,
        ),
        Workload(
            name="backsub", kind="named", source=_TRI_BACKSUB_SRC,
            schedule="outer:1", params={"N": 4}, check_legality=False,
        ),
    ]


def corpus() -> List[Workload]:
    """The repository's named nests as campaign workloads."""
    return [
        Workload(
            name="example1", kind="named", schedule="trivial",
            params={"N": 2, "M": 2},
        ),
        Workload(
            name="broadcast", kind="named", schedule="trivial",
            params={"N": 2},
        ),
        Workload(
            name="gather", kind="named", schedule="infer",
            params={"N": 2},
        ),
        Workload(
            name="reduction", kind="named", schedule="infer",
            params={"N": 2},
        ),
        Workload(
            name="example5", kind="named", schedule="outer:1",
            params={"n": 2},
        ),
        Workload(
            name="matmul", kind="named", source=_MATMUL_SRC,
            schedule="infer", params={"N": 2},
        ),
        Workload(
            name="gauss", kind="named", source=_GAUSS_SRC,
            schedule="outer:1", params={"N": 3}, check_legality=False,
        ),
        Workload(
            name="adi", kind="named", source=_ADI_SRC,
            schedule="outer:1", params={"T": 2, "N": 3},
            check_legality=False,
        ),
    ]


# ---------------------------------------------------------------------------
# Seeded random generator
# ---------------------------------------------------------------------------

_DEFAULT_PARAMS = {"N": 2, "M": 2}


def _render_affine(coeffs: List[int], const: int, variables: Tuple[str, ...]) -> str:
    terms: List[str] = []
    for var, k in zip(variables, coeffs):
        if k == 0:
            continue
        if k == 1:
            terms.append(var)
        elif k == -1:
            terms.append(f"-{var}")
        else:
            terms.append(f"{k}*{var}")
    if const or not terms:
        terms.append(str(const))
    expr = terms[0]
    for t in terms[1:]:
        expr += t if t.startswith("-") else "+" + t
    return expr


def _unimodular_rows(rng: random.Random, d: int) -> List[List[int]]:
    rows = [[1 if a == b else 0 for b in range(d)] for a in range(d)]
    for _ in range(rng.randint(1, 3)):
        a, b = rng.sample(range(d), 2)
        s = rng.choice((-1, 1))
        rows[a] = [ra + s * rb for ra, rb in zip(rows[a], rows[b])]
    if rng.random() < 0.5:
        rng.shuffle(rows)
    return rows


def _selection_rows(rng: random.Random, q: int, d: int) -> List[List[int]]:
    cols = list(range(d))
    rng.shuffle(cols)
    rows = []
    for r in range(q):
        row = [0] * d
        row[cols[r % d]] = 1
        if rng.random() < 0.4:
            row[rng.randrange(d)] += rng.choice((-1, 1))
        rows.append(row)
    return rows


def _rank_deficient_rows(rng: random.Random, q: int, d: int) -> List[List[int]]:
    rows = _selection_rows(rng, q, d)
    if q >= 2:
        src, dst = rng.randrange(q), rng.randrange(q)
        if src == dst:
            rows[dst] = [0] * d
        else:
            rows[dst] = list(rows[src])
    return rows


def _access_rows(rng: random.Random, q: int, d: int) -> List[List[int]]:
    roll = rng.random()
    if q == d and roll < 0.45:
        return _unimodular_rows(rng, d)
    if roll < 0.85:
        return _selection_rows(rng, q, d)
    return _rank_deficient_rows(rng, q, d)


def _render_ref(rng: random.Random, array: str, dim: int, variables: Tuple[str, ...]) -> str:
    rows = _access_rows(rng, dim, len(variables))
    subs = []
    for row in rows:
        const = rng.choice((0, 0, 0, 1, -1, 2))
        subs.append(_render_affine(row, const, variables))
    return f"{array}[{', '.join(subs)}]"


def _stmt_line(
    rng: random.Random,
    arrays: Dict[str, int],
    stmt_no: int,
    indent: str,
    variables: Tuple[str, ...],
) -> str:
    """One random statement line (shared by the rectangular and the
    triangular source generators; RNG call order is part of the
    byte-stability contract of :func:`generate_workloads`)."""
    names = sorted(arrays)
    wr = rng.choice(names)
    write = _render_ref(rng, wr, arrays[wr], variables)
    reads = ", ".join(
        _render_ref(rng, arr, arrays[arr], variables)
        for arr in (rng.choice(names) for _ in range(rng.randint(1, 2)))
    )
    return f"{indent}S{stmt_no}: {write} = f{stmt_no}({reads})"


def _random_nest_source(rng: random.Random) -> str:
    arrays = {name: rng.randint(1, 3) for name in ("a", "b", "c")}
    decls = ", ".join(f"{n}({d})" for n, d in sorted(arrays.items()))
    lines = [f"array {decls}"]
    bound = lambda: rng.choice(("N", "M"))
    lines.append(f"for i = 0..{bound()}:")
    lines.append(f"  for j = 0..{bound()}:")

    stmt_no = 0

    def stmt_line(indent: str, variables: Tuple[str, ...]) -> str:
        nonlocal stmt_no
        stmt_no += 1
        return _stmt_line(rng, arrays, stmt_no, indent, variables)

    shape = rng.choice(("perfect2", "perfect3", "nonperfect"))
    if shape == "perfect2":
        for _ in range(rng.randint(1, 2)):
            lines.append(stmt_line("    ", ("i", "j")))
    elif shape == "perfect3":
        lines.append(f"    for k = 0..{bound()}:")
        for _ in range(rng.randint(1, 2)):
            lines.append(stmt_line("      ", ("i", "j", "k")))
    else:
        lines.append(stmt_line("    ", ("i", "j")))
        lines.append(f"    for k = 0..{bound()}:")
        for _ in range(rng.randint(1, 2)):
            lines.append(stmt_line("      ", ("i", "j", "k")))
    return "\n".join(lines) + "\n"


def _random_triangular_source(rng: random.Random) -> str:
    """A random nest with at least one non-rectangular loop: lower/upper
    triangular or trapezoidal inner ``j`` loops, or a rectangular middle
    with a triangular innermost ``k`` loop."""
    arrays = {name: rng.randint(1, 3) for name in ("a", "b", "c")}
    decls = ", ".join(f"{n}({d})" for n, d in sorted(arrays.items()))
    lines = [f"array {decls}"]
    bound = lambda: rng.choice(("N", "M"))
    lines.append(f"for i = 0..{bound()}:")

    stmt_no = 0

    def stmt_line(indent: str, variables: Tuple[str, ...]) -> str:
        nonlocal stmt_no
        stmt_no += 1
        return _stmt_line(rng, arrays, stmt_no, indent, variables)

    shape = rng.choice(("lower", "upper", "trapezoid", "deep"))
    if shape == "lower":
        lines.append(f"  for j = i..{bound()}:")
    elif shape == "upper":
        lines.append("  for j = 0..i:")
    elif shape == "trapezoid":
        lines.append(f"  for j = i..{bound()}+1:")
    else:  # deep: rectangular j, triangular innermost k
        lines.append(f"  for j = 0..{bound()}:")
    if shape == "deep":
        lines.append(stmt_line("    ", ("i", "j")))
        lines.append(f"    for k = j..{bound()}:")
        for _ in range(rng.randint(1, 2)):
            lines.append(stmt_line("      ", ("i", "j", "k")))
    else:
        for _ in range(rng.randint(1, 2)):
            lines.append(stmt_line("    ", ("i", "j")))
    return "\n".join(lines) + "\n"


def _workload_is_valid(workload: Workload, m: int = 2) -> bool:
    """Full-pipeline validation: parse, legal schedule, heuristic runs."""
    from ..alignment import two_step_heuristic
    from ..ir import infer_schedules, schedule_is_legal

    try:
        nest = workload.resolve()
        bounds = dict(workload.params)
        schedules = infer_schedules(nest, bounds)
        if not schedule_is_legal(schedules, bounds):
            return False
        two_step_heuristic(nest, m=m, schedules=schedules)
    except Exception:
        return False
    return True


def _generate_validated(
    seed: int,
    count: int,
    make_source: Callable[[random.Random], str],
    prefix: str,
    params: Optional[Dict[str, int]],
    max_attempts_per_nest: int,
) -> List[Workload]:
    """The shared seeded generate-validate-retry loop (see
    :func:`generate_workloads` for the determinism contract)."""
    rng = random.Random(seed)
    bindings = dict(_DEFAULT_PARAMS)
    bindings.update(params or {})
    out: List[Workload] = []
    attempts = 0
    budget = max_attempts_per_nest * max(1, count)
    while len(out) < count:
        attempts += 1
        if attempts > budget:
            raise RuntimeError(
                f"workload generation stalled: {len(out)}/{count} nests "
                f"after {attempts - 1} attempts (seed {seed})"
            )
        source = make_source(rng)
        candidate = Workload(
            name=f"{prefix}-{seed}-{len(out)}",
            kind="generated",
            source=source,
            schedule="infer",
            params=dict(bindings),
        )
        if _workload_is_valid(candidate):
            out.append(candidate)
    return out


def generate_workloads(
    seed: int,
    count: int,
    params: Optional[Dict[str, int]] = None,
    max_attempts_per_nest: int = 200,
) -> List[Workload]:
    """Generate ``count`` validated workloads from ``seed``.

    Deterministic: the same ``(seed, count, params)`` produces a
    byte-identical corpus (sources included), because candidate
    generation and validation are both pure functions of the seeded RNG
    stream.  Candidates that fail validation are discarded and the RNG
    simply advances — a larger ``count`` extends the corpus of a
    smaller one.

    ``params`` overrides the default size bindings; generated nests
    always reference ``N``/``M``, so those stay bound (to the defaults)
    even when the caller's bindings name neither.
    """
    return _generate_validated(
        seed, count, _random_nest_source, "gen", params, max_attempts_per_nest
    )


def generate_triangular_workloads(
    seed: int,
    count: int,
    params: Optional[Dict[str, int]] = None,
    max_attempts_per_nest: int = 200,
) -> List[Workload]:
    """Generate ``count`` validated *triangular/trapezoidal* workloads.

    Same determinism contract as :func:`generate_workloads`, on an
    independent RNG stream (names ``tri-SEED-K``): every emitted nest
    has at least one non-rectangular loop, parses into a polyhedral
    :class:`~repro.ir.Domain`, carries a legal inferred schedule on the
    bounded domains and completes the two-step heuristic.
    """
    return _generate_validated(
        seed,
        count,
        _random_triangular_source,
        "tri",
        params,
        max_attempts_per_nest,
    )
