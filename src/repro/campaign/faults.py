"""Deterministic fault injection for campaign robustness testing.

The chaos harness (``benchmarks/bench_chaos.py``) and the executor
tests need to *provoke* the failure modes the resilient execution layer
claims to survive: transient task failures, worker processes killed by
the OS (OOM killer, SIGKILL) and native-code hangs that SIGALRM cannot
interrupt.  This module turns the ``REPRO_FAULT_INJECT`` environment
spec into those events, deterministically, so a faulted campaign is
reproducible and its fault set is *predictable* in advance
(:func:`would_fault`).

Spec grammar (clauses separated by ``;``, options by ``,``)::

    REPRO_FAULT_INJECT = clause (";" clause)*
    clause = mode [":" opt ("," opt)*]
    mode   = "fail" | "hang" | "kill"
    opt    = "p=F"      probability per (task, attempt), hash-based
           | "seed=I"   seed of the probability hash (default 0)
           | "task=S"   fire on task ids starting with S
           | "times=I"  with task=: sabotage the first I attempts (default 1)
           | "n=I"      fire on the I-th injection check of this process

Examples::

    REPRO_FAULT_INJECT="kill:p=0.2,seed=7"      # ~20% of tasks SIGKILL their worker
    REPRO_FAULT_INJECT="fail:task=3f2a,times=2" # task 3f2a... fails twice, then works
    REPRO_FAULT_INJECT="hang:n=3;fail:p=0.1"    # 3rd check hangs; 10% transient fails

Selection is **order-independent** for ``p=``/``task=`` clauses: the
decision is a pure function of ``(seed, mode, task_id, attempt)``, so
the same tasks fault no matter how a pool schedules them, and a retry
(``attempt`` + 1) re-rolls — injected faults are *transient* by
construction unless ``times=``/``p=1`` pins them.  ``n=`` is a
per-process counter for targeted unit tests.  Clauses are checked in
order; the first that fires wins.

Fault modes and the capability gate:

* ``fail`` — raise :class:`InjectedFault` (recorded as a typed
  ``error_kind="fault"`` error);
* ``kill`` — ``SIGKILL`` the current process.  Only honoured when the
  executor marked the process *sacrificial* (``allow_kill=True``, i.e.
  a pool/supervised worker); otherwise downgraded to ``fail`` so an
  inline run cannot shoot the main process;
* ``hang`` — block ``SIGALRM`` and sleep forever, simulating a hung
  native call.  Only honoured under the ``resilient`` executor
  (``allow_hang=True``), whose supervisor detects and kills hung
  workers; elsewhere downgraded to ``fail``.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

#: environment variable holding the fault spec
FAULT_ENV = "REPRO_FAULT_INJECT"

MODES = ("fail", "hang", "kill")


class InjectedFault(RuntimeError):
    """A transient failure raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a ``REPRO_FAULT_INJECT`` spec."""

    mode: str  # "fail" | "hang" | "kill"
    p: Optional[float] = None
    seed: int = 0
    task: Optional[str] = None
    times: int = 1
    n: Optional[int] = None

    def fires(self, task_id: str, attempt: int, counter: int) -> bool:
        """Pure selector: does this clause fire for this check?

        ``counter`` is the 1-based index of the injection check within
        the process (used by ``n=`` clauses only).
        """
        if self.n is not None:
            return counter == self.n
        if self.task is not None:
            return task_id.startswith(self.task) and attempt <= self.times
        if self.p is not None:
            return _roll(self.seed, self.mode, task_id, attempt) < self.p
        return False


def _roll(seed: int, mode: str, task_id: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) keyed on the check identity."""
    key = f"{seed}:{mode}:{task_id}:{attempt}".encode()
    return int.from_bytes(hashlib.sha1(key).digest()[:8], "big") / 2.0**64


def parse_fault_spec(text: str) -> List[FaultClause]:
    """Parse a ``REPRO_FAULT_INJECT`` value; raises ``ValueError`` with
    a friendly message on a malformed spec."""
    clauses: List[FaultClause] = []
    for raw in text.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        mode, _, opts = raw.partition(":")
        mode = mode.strip()
        if mode not in MODES:
            raise ValueError(
                f"bad {FAULT_ENV} clause {raw!r}: unknown mode {mode!r} "
                f"(known: {', '.join(MODES)})"
            )
        kw = {"mode": mode}
        for opt in opts.split(",") if opts else []:
            key, sep, val = opt.partition("=")
            key = key.strip()
            val = val.strip()
            if not sep or key not in ("p", "seed", "task", "times", "n"):
                raise ValueError(
                    f"bad {FAULT_ENV} option {opt!r} in clause {raw!r} "
                    "(known: p=, seed=, task=, times=, n=)"
                )
            try:
                if key == "p":
                    kw["p"] = float(val)
                    if not 0.0 <= kw["p"] <= 1.0:
                        raise ValueError
                elif key == "task":
                    kw["task"] = val
                else:
                    kw[key] = int(val)
            except ValueError:
                raise ValueError(
                    f"bad {FAULT_ENV} value {val!r} for {key}= in clause "
                    f"{raw!r}"
                ) from None
        if kw.get("p") is None and kw.get("task") is None and kw.get("n") is None:
            raise ValueError(
                f"bad {FAULT_ENV} clause {raw!r}: needs a selector "
                "(p=, task= or n=)"
            )
        clauses.append(FaultClause(**kw))
    return clauses


def would_fault(
    clauses: Sequence[FaultClause], task_id: str, attempt: int = 1
) -> Optional[str]:
    """Predict which mode (if any) fires for ``(task_id, attempt)``.

    Pure — this is how the chaos harness computes the expected fault
    set before running.  ``n=`` clauses are skipped: they depend on the
    per-process check counter, which is execution-order dependent.
    """
    for clause in clauses:
        if clause.n is None and clause.fires(task_id, attempt, counter=0):
            return clause.mode
    return None


class FaultPlan:
    """An activated spec bound to the current process's capabilities."""

    def __init__(
        self,
        clauses: Sequence[FaultClause],
        allow_kill: bool = False,
        allow_hang: bool = False,
    ):
        self.clauses = list(clauses)
        self.allow_kill = allow_kill
        self.allow_hang = allow_hang
        self.counter = 0

    def check(self, task_id: str, attempt: int) -> Optional[str]:
        self.counter += 1
        for clause in self.clauses:
            if clause.fires(task_id, attempt, self.counter):
                return clause.mode
        return None


_active: Optional[FaultPlan] = None


def activate(
    spec: Union[str, Sequence[FaultClause], None],
    allow_kill: bool = False,
    allow_hang: bool = False,
) -> None:
    """Arm fault injection for this process (``None``/empty disarms).

    Executors call this in their worker entry points with the
    capabilities the backend can survive; see the module doc for the
    downgrade rules.
    """
    global _active
    if spec is None or spec == "" or spec == []:
        _active = None
        return
    clauses = parse_fault_spec(spec) if isinstance(spec, str) else list(spec)
    _active = FaultPlan(clauses, allow_kill=allow_kill, allow_hang=allow_hang)


def deactivate() -> None:
    global _active
    _active = None


def active_spec() -> Optional[str]:
    """The raw spec from the environment (the executors' default)."""
    return os.environ.get(FAULT_ENV) or None


def maybe_inject(task_id: str, attempt: int) -> None:
    """Fire the configured fault for this check, if any.

    ``fail`` (and any downgraded mode) raises :class:`InjectedFault`;
    ``kill`` SIGKILLs the process; ``hang`` blocks SIGALRM and sleeps —
    both only when the active plan allows them.
    """
    if _active is None:
        return
    mode = _active.check(task_id, attempt)
    if mode is None:
        return
    if mode == "kill" and _active.allow_kill:
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang" and _active.allow_hang:
        # simulate a hung native call: SIGALRM cannot interrupt it, so
        # only a supervising parent (heartbeat/deadline kill) recovers
        if hasattr(signal, "pthread_sigmask") and hasattr(signal, "SIGALRM"):
            signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        while True:  # pragma: no cover - the supervisor kills us
            time.sleep(3600)
    note = "" if mode == "fail" else f" (injected {mode} downgraded to fail)"
    raise InjectedFault(
        f"[fault-injected] transient failure for task {task_id} "
        f"attempt {attempt}{note}"
    )
