"""The in-process backend: no workers, no pickling, easiest to debug.

Runs every group sequentially in the calling process.  Fault injection
is armed *without* the kill/hang capabilities — an injected ``kill``
must not shoot the main process, so both are downgraded to transient
failures (see :mod:`repro.campaign.faults`).

The parent's compile cache is used as-is (the config's pass-through
size equals the live setting by construction in ``run_campaign``), so
an inline campaign behaves exactly like the historical ``jobs=1`` path.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from .. import faults
from ..store import TaskResult
from ..sweep import SweepTask
from .base import Executor, register_executor, run_group


@register_executor
class InlineExecutor(Executor):
    name = "inline"

    def run(
        self, groups: Sequence[List[SweepTask]]
    ) -> Iterator[List[TaskResult]]:
        faults.activate(
            self.config.fault_spec, allow_kill=False, allow_hang=False
        )
        try:
            for group in groups:
                yield run_group(group, self.config)
        finally:
            faults.deactivate()
