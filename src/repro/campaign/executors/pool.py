"""The hardened process-pool backend (the historical default, fixed).

The old runner pushed groups through ``multiprocessing.Pool
.imap_unordered``, which **hangs forever** when a worker dies — a
SIGKILLed (OOM-killed, segfaulted) worker simply never reports its
group, and the campaign stalls with work lost.  This backend drives a
``concurrent.futures.ProcessPoolExecutor`` instead, whose broken-pool
detection turns worker death into an exception the supervisor can act
on:

* groups are submitted through a **bounded window** (``jobs + 2``
  in-flight), so a pool break only voids a handful of groups;
* on a break the pool is rebuilt and the voided groups re-run in
  **quarantine** — one at a time, nothing else in flight — which makes
  the next crash precisely attributable to the group that caused it;
* an attributed crasher is retried with capped exponential backoff up
  to ``retries`` times, then surfaced as ``status="crashed"`` records
  (``error_kind="crash"``) for the whole lost group, and the campaign
  continues.

Granularity caveat: a pool worker reports per *group*, so a crash
loses (and a crash record covers) the whole compile-key group.  The
``resilient`` backend supervises per task; use it when per-task crash
attribution or hang detection matters.
"""

from __future__ import annotations

import concurrent.futures as cf
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...obs import metrics as obs_metrics
from ..runner import crashed_result
from ..store import TaskResult
from ..sweep import SweepTask
from .base import (
    Executor,
    ExecutorConfig,
    backoff_delay,
    init_worker,
    mp_context,
    register_executor,
    run_group,
)

#: one work item: (group id, tasks, first_attempt for every task)
_Item = Tuple[int, List[SweepTask], int]


def _pool_init(config: ExecutorConfig) -> None:
    # kill faults are survivable here (the pool rebuilds); hangs are
    # not (no heartbeat supervision), so they downgrade to failures
    init_worker(config, allow_kill=True, allow_hang=False)


def _pool_group(
    group: List[SweepTask], config: ExecutorConfig, first_attempt: int
) -> List[TaskResult]:
    first = {t.task_id: first_attempt for t in group}
    return run_group(group, config, first_attempts=first)


@register_executor
class PoolExecutor(Executor):
    name = "pool"

    def _new_pool(self) -> cf.ProcessPoolExecutor:
        return cf.ProcessPoolExecutor(
            max_workers=max(1, self.config.jobs),
            mp_context=mp_context(self.config.mp_context),
            initializer=_pool_init,
            initargs=(self.config,),
        )

    def run(
        self, groups: Sequence[List[SweepTask]]
    ) -> Iterator[List[TaskResult]]:
        cfg = self.config
        window = max(1, cfg.jobs) + 2
        queue: "deque[_Item]" = deque(
            (gid, list(group), 1) for gid, group in enumerate(groups)
        )
        quarantine: "deque[_Item]" = deque()
        strikes: Dict[int, int] = {}
        futures: Dict[cf.Future, _Item] = {}
        pool: Optional[cf.ProcessPoolExecutor] = None
        try:
            while queue or quarantine or futures:
                if pool is None:
                    pool = self._new_pool()
                if not futures:
                    # isolation mode when a quarantine exists: exactly
                    # one suspect in flight, so a break is attributable
                    # to that group
                    src = quarantine if quarantine else queue
                    limit = 1 if quarantine else window
                    try:
                        while src and len(futures) < limit:
                            item = src.popleft()
                            futures[
                                pool.submit(_pool_group, item[1], cfg, item[2])
                            ] = item
                    except cf.BrokenExecutor:
                        # pool died under the submit (e.g. a worker was
                        # killed while idle): requeue and rebuild
                        src.appendleft(item)
                        if not futures:
                            pool.shutdown(wait=False, cancel_futures=True)
                            pool = None
                            obs_metrics.counter(
                                "campaign.executor.pool.rebuilds"
                            ).inc()
                            continue
                        # any futures submitted before the break will
                        # surface as BrokenExecutor below and requeue
                done, _ = cf.wait(
                    list(futures), return_when=cf.FIRST_COMPLETED
                )
                voided: List[_Item] = []
                isolated = len(futures) == 1
                for fut in done:
                    item = futures.pop(fut)
                    try:
                        yield fut.result()
                    except cf.BrokenExecutor:
                        voided.append(item)
                    except Exception as exc:  # infrastructure (pickling…)
                        yield [
                            crashed_result(
                                t, f"executor error: {exc}", attempts=item[2]
                            )
                            for t in item[1]
                        ]
                if not voided:
                    continue
                # the pool is broken: every other in-flight future is
                # void too; reclaim their groups and rebuild the pool
                voided.extend(futures.values())
                futures.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                obs_metrics.counter("campaign.executor.pool.rebuilds").inc()
                if isolated:
                    gid, group, first_attempt = voided[0]
                    strikes[gid] = strikes.get(gid, 0) + 1
                    if strikes[gid] > cfg.retries:
                        yield [
                            crashed_result(
                                t,
                                "worker process died while running this "
                                "group (retries exhausted)",
                                attempts=first_attempt,
                            )
                            for t in group
                        ]
                    else:
                        import time

                        delay = backoff_delay(cfg.backoff, strikes[gid])
                        if delay > 0:
                            time.sleep(delay)  # nothing else is in flight
                        quarantine.append((gid, group, first_attempt + 1))
                else:
                    # cannot tell which group killed the worker: run all
                    # of them isolated; innocents complete, the culprit
                    # breaks again — alone, and is then attributed
                    obs_metrics.counter(
                        "campaign.executor.pool.quarantined"
                    ).inc(len(voided))
                    quarantine.extend(voided)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
