"""The ``Executor`` interface and the shared worker-side machinery.

An executor takes the runner's compile-key groups (all machine x mesh
cells of one compiled nest; see
:func:`repro.campaign.sweep.group_by_compile_key`) and yields batches
of :class:`~repro.campaign.store.TaskResult` as they complete.  The
runner records every result to the JSONL checkpoint the moment a batch
lands, so executor choice never changes durability semantics — only
how (and how safely) the work is driven.

Worker-side helpers shared by all backends:

* :func:`init_worker` — arm fault injection with the backend's
  capabilities and apply the compile-cache size *explicitly* (spawn
  workers do not inherit post-import ``set_compile_cache_size`` /
  ``REPRO_CAMPAIGN_COMPILE_CACHE`` state the way fork workers do);
* :func:`run_task_with_retries` — per-task retry of transient failure
  kinds with capped exponential backoff;
* :func:`run_group` — the sequential group loop every process-based
  backend ships to its workers.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Type

from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from .. import faults
from ..runner import (
    execute_task,
    group_pricing_allowed,
    price_group_batched,
    set_baseline_cache_size,
    set_compile_cache_dir,
    set_compile_cache_size,
)
from ..store import TaskResult
from ..sweep import SweepTask

#: failure kinds worth retrying — worker death, memory pressure,
#: injected transients and hangs/timeouts can all clear on a second
#: attempt; ``compile``/``price`` errors are deterministic and are not
RETRYABLE_KINDS = frozenset({"fault", "crash", "oom", "timeout"})

#: ceiling of the exponential retry backoff, in seconds
BACKOFF_CAP = 30.0


@dataclass
class ExecutorConfig:
    """Backend-independent execution knobs (built by the runner from
    :class:`~repro.campaign.runner.CampaignConfig`)."""

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.5
    heartbeat_timeout: float = 30.0
    mp_context: Optional[str] = None
    #: the parent's compile-cache size, passed through to workers
    compile_cache_size: Optional[int] = None
    #: the parent's baseline-price-cache size, passed through the same
    #: way (spawn workers would otherwise reset to the env default)
    baseline_cache_size: Optional[int] = None
    #: the parent's persistent compile-cache directory (disk tier);
    #: None leaves the worker's own env-derived setting untouched
    compile_cache_dir: Optional[str] = None
    #: the parent's array backend name (``repro.machine.backend``);
    #: None leaves the worker's own resolution untouched
    price_backend: Optional[str] = None
    #: raw ``REPRO_FAULT_INJECT`` spec (None = injection off)
    fault_spec: Optional[str] = None
    #: the parent's tracing flag, passed through to workers the same
    #: way the cache size is (spawn workers re-import ``repro.obs``
    #: with tracing off; fork workers inherit but stay consistent)
    trace: bool = False


class Executor(ABC):
    """Submit compile-key groups, yield ``TaskResult`` batches."""

    #: registry name (set by subclasses)
    name: str = ""

    def __init__(self, config: ExecutorConfig):
        self.config = config

    @abstractmethod
    def run(
        self, groups: Sequence[List[SweepTask]]
    ) -> Iterator[List[TaskResult]]:
        """Execute every task of every group, yielding result batches
        as they complete.  Implementations must be non-hanging: worker
        death, hung tasks and transient failures become typed failure
        records, never a stuck iterator."""


def mp_context(name: Optional[str] = None):
    """The multiprocessing context for process-based backends: the
    named method when given, else fork when the platform has it (cheap
    workers, inherited imports), else the platform default."""
    import multiprocessing

    if name:
        return multiprocessing.get_context(name)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return multiprocessing.get_context()


def backoff_delay(base: float, retry: int, cap: float = BACKOFF_CAP) -> float:
    """Capped exponential backoff: ``base * 2**(retry-1)``, ``retry``
    1-based, never above ``cap`` (or negative)."""
    if base <= 0 or retry <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (retry - 1)))


def init_worker(
    config: ExecutorConfig, allow_kill: bool, allow_hang: bool
) -> None:
    """Prepare a worker process: explicit cache size, tracing flag and
    fault plan.

    Called in every worker entry point (and by the inline backend with
    both capabilities off).  Passing the cache size and the tracing
    enablement through the call rather than relying on fork-inherited
    globals is what keeps spawn-context workers honouring configuration
    set after import (a spawn worker re-imports ``repro.obs`` with
    tracing at its env default, which would silently drop every span of
    a ``--trace`` run).
    """
    if config.compile_cache_size is not None:
        set_compile_cache_size(config.compile_cache_size)
    if config.baseline_cache_size is not None:
        set_baseline_cache_size(config.baseline_cache_size)
    if config.compile_cache_dir is not None:
        set_compile_cache_dir(config.compile_cache_dir)
    if config.price_backend is not None:
        from ...machine.backend import set_price_backend

        set_price_backend(config.price_backend)
    obs_tracing.set_enabled(config.trace)
    faults.activate(
        config.fault_spec, allow_kill=allow_kill, allow_hang=allow_hang
    )


def run_task_with_retries(
    task: SweepTask,
    config: ExecutorConfig,
    first_attempt: int = 1,
    sleep: Callable[[float], None] = time.sleep,
    on_attempt: Optional[Callable[[SweepTask, int], None]] = None,
) -> TaskResult:
    """Execute one task, retrying transient failure kinds.

    The attempt budget is ``config.retries + 1`` total attempts across
    the task's lifetime; ``first_attempt`` accounts for attempts a
    previous (crashed) worker already consumed, so supervisors resume
    the count instead of restarting it.  ``on_attempt`` fires at the
    start of every attempt (after any backoff sleep) — the resilient
    worker uses it to tell its supervisor the deadline clock restarts.
    """
    attempt = first_attempt
    while True:
        if on_attempt is not None:
            on_attempt(task, attempt)
        result = execute_task(task, timeout=config.timeout, attempt=attempt)
        if (
            result.status == "ok"
            or result.error_kind not in RETRYABLE_KINDS
            or attempt >= config.retries + 1
        ):
            return result
        attempt += 1
        obs_metrics.counter("campaign.executor.retries").inc()
        delay = backoff_delay(config.backoff, attempt - first_attempt)
        if delay > 0:
            sleep(delay)


def run_group(
    group: Sequence[SweepTask],
    config: ExecutorConfig,
    first_attempts: Optional[Dict[str, int]] = None,
) -> List[TaskResult]:
    """Sequentially run one compile-key group with per-task retries
    (the in-worker half of every backend; the first task pays the
    compile, the rest hit the worker's cache).

    Fresh groups take the batched whole-group pricing path when the
    runner's gates allow it (bit-identical results; see
    :func:`repro.campaign.runner.price_group_batched`); groups with
    resumed attempt counts — a crashed worker's second life — keep the
    per-task loop so retry bookkeeping stays exact."""
    first_attempts = first_attempts or {}
    if not first_attempts and group_pricing_allowed(group, config.timeout):
        results = price_group_batched(group)
        if results is not None:
            return results
    return [
        run_task_with_retries(
            task, config, first_attempt=first_attempts.get(task.task_id, 1)
        )
        for task in group
    ]


_REGISTRY: Dict[str, Type[Executor]] = {}


def register_executor(cls: Type[Executor]) -> Type[Executor]:
    """Class decorator adding a backend to the registry."""
    if not cls.name:
        raise ValueError(f"executor class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def executor_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def make_executor(name: str, config: ExecutorConfig) -> Executor:
    """Instantiate a backend by registry name (friendly ``ValueError``
    on an unknown name)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r} "
            f"(known: {', '.join(executor_names())})"
        ) from None
    return cls(config)
