"""The supervised-worker backend: per-task crash/hang recovery.

Each compile-key group runs in its own child process under active
supervision (up to ``jobs`` children at a time).  The child streams a
message per event over a pipe — task/attempt started, backoff begun,
result ready, heartbeat — and the parent turns every failure mode into
a typed record instead of a hung campaign:

* **worker death** (SIGKILL, OOM killer, segfault): the pipe hits EOF /
  the process exits; the in-flight task is retried in a fresh child
  (capped exponential backoff) while the attempt budget lasts, then
  recorded as ``status="crashed"`` (``error_kind="crash"``).  Tasks of
  the group that already reported results are *not* re-run — results
  stream out per task, so a crash loses at most one task's work;
* **hangs SIGALRM cannot interrupt** (native code holding the GIL, or
  masked alarms): detected two ways — a per-attempt deadline
  (``timeout`` plus grace, extended by announced backoff sleeps) when a
  timeout is configured, and a heartbeat watchdog
  (``heartbeat_timeout``) for GIL-held wedges even without one.  The
  worker is killed and the task recorded as ``status="timeout"``
  (retried first, like any transient);
* **transient failures** (injected faults, MemoryError): retried
  inside the worker itself with the same backoff policy.

This also works on platforms without SIGALRM or ``fork`` — pass
``mp_context="spawn"``; all worker configuration travels through the
supervision pipe rather than fork-inherited globals.

Results stream to the caller (and thus the JSONL checkpoint) the
moment each task finishes, so killing the *campaign* process mid-group
still loses at most the in-flight task.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from multiprocessing.connection import wait as conn_wait
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...obs import metrics as obs_metrics
from ..runner import (
    _failure_result,
    crashed_result,
    group_pricing_allowed,
    price_group_batched,
)
from ..store import TaskResult
from ..sweep import SweepTask
from .base import (
    Executor,
    ExecutorConfig,
    backoff_delay,
    init_worker,
    mp_context,
    register_executor,
    run_task_with_retries,
)

#: parent poll interval while supervising (seconds)
_POLL = 0.05
#: slack added to the per-attempt deadline before declaring a hang
_HANG_GRACE = 1.0
#: extra slack allowed on announced backoff sleeps
_BACKOFF_SLACK = 0.5


def _heartbeat_interval(config: ExecutorConfig) -> float:
    return max(0.05, min(1.0, config.heartbeat_timeout / 4.0))


def _supervised_entry(
    conn, group: List[SweepTask], config: ExecutorConfig,
    first_attempts: Dict[str, int],
) -> None:
    """Child-process main: run the group, streaming supervision events."""
    init_worker(config, allow_kill=True, allow_hang=True)
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(msg: Tuple) -> None:
        with send_lock:
            conn.send(msg)

    def beat() -> None:
        interval = _heartbeat_interval(config)
        while not stop.wait(interval):
            try:
                send(("hb",))
            except OSError:  # parent went away; nothing left to tell
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        # fresh groups take the batched whole-group pricing path when
        # the runner's gates allow (bit-identical results; results
        # still stream per task so the supervisor's bookkeeping — and
        # crash durability at the store — is unchanged); a respawned
        # child resuming attempt counts keeps the per-task loop
        results: Optional[List[TaskResult]] = None
        if not first_attempts and group_pricing_allowed(
            group, config.timeout
        ):
            results = price_group_batched(group)
        if results is not None:
            for result in results:
                send(("result", result))
        else:
            for task in group:
                result = run_task_with_retries(
                    task,
                    config,
                    first_attempt=first_attempts.get(task.task_id, 1),
                    sleep=lambda d: (send(("backoff", d)), time.sleep(d)),
                    on_attempt=lambda t, a: send(("attempt", t.task_id)),
                )
                send(("result", result))
        send(("done",))
    finally:
        stop.set()
        conn.close()


class _Child:
    """Supervisor-side state of one worker process."""

    def __init__(self, proc, conn, tasks: List[SweepTask],
                 first_attempts: Dict[str, int], spawns: int = 1):
        self.proc = proc
        self.conn = conn
        self.tasks = deque(tasks)  # not yet reported
        self.first_attempts = dict(first_attempts)
        self.spawns = spawns
        now = time.monotonic()
        self.last_msg = now
        self.attempt_started: Optional[float] = None
        self.current_id: Optional[str] = None
        self.deadline_extra = 0.0
        self.finished = False
        self.kill_reason: Optional[str] = None

    def hang_deadline(self, timeout: Optional[float]) -> Optional[float]:
        if timeout is None or self.attempt_started is None:
            return None
        return (
            self.attempt_started + timeout + self.deadline_extra + _HANG_GRACE
        )


@register_executor
class ResilientExecutor(Executor):
    name = "resilient"

    def run(
        self, groups: Sequence[List[SweepTask]]
    ) -> Iterator[List[TaskResult]]:
        cfg = self.config
        ctx = mp_context(cfg.mp_context)
        slots = max(1, cfg.jobs)
        ready: "deque[Tuple[List[SweepTask], Dict[str, int], int]]" = deque(
            (list(group), {}, 1) for group in groups
        )
        delayed: List[
            Tuple[float, List[SweepTask], Dict[str, int], int]
        ] = []
        children: List[_Child] = []

        def spawn(
            tasks: List[SweepTask], fa: Dict[str, int], spawns: int
        ) -> _Child:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_supervised_entry,
                args=(child_conn, tasks, cfg, fa),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            obs_metrics.counter("campaign.executor.resilient.spawns").inc()
            return _Child(proc, parent_conn, tasks, fa, spawns=spawns)

        try:
            while ready or delayed or children:
                now = time.monotonic()
                if delayed:
                    due = [it for it in delayed if it[0] <= now]
                    for it in due:
                        delayed.remove(it)
                        ready.append((it[1], it[2], it[3]))
                while ready and len(children) < slots:
                    children.append(spawn(*ready.popleft()))
                if not children:
                    if delayed:
                        time.sleep(
                            min(_POLL, max(0.0, delayed[0][0] - now))
                        )
                    continue

                # multiplex over the supervision pipes
                try:
                    conn_wait([c.conn for c in children], timeout=_POLL)
                except OSError:
                    pass
                now = time.monotonic()
                for child in list(children):
                    batch = self._drain(child, now)
                    if batch:
                        yield batch
                    for late in self._reap(child, children, ready, delayed, now):
                        yield late
        finally:
            for child in children:
                if child.proc.is_alive():
                    child.proc.kill()
                child.proc.join(timeout=1.0)
                child.conn.close()

    # -- supervisor internals -------------------------------------------

    def _drain(self, child: _Child, now: float) -> List[TaskResult]:
        """Pull every pending message off one child's pipe."""
        batch: List[TaskResult] = []
        while True:
            try:
                if not child.conn.poll(0):
                    break
                msg = child.conn.recv()
            except (EOFError, OSError):
                break  # death handled by _reap
            child.last_msg = now
            kind = msg[0]
            if kind == "attempt":
                child.current_id = msg[1]
                child.attempt_started = now
                child.deadline_extra = 0.0
            elif kind == "backoff":
                child.deadline_extra += msg[1] + _BACKOFF_SLACK
            elif kind == "result":
                result: TaskResult = msg[1]
                batch.append(result)
                child.current_id = None
                child.attempt_started = None
                if child.tasks and child.tasks[0].task_id == result.task_id:
                    child.tasks.popleft()
                else:  # defensive: report order should match task order
                    child.tasks = deque(
                        t for t in child.tasks if t.task_id != result.task_id
                    )
            elif kind == "done":
                child.finished = True
            # "hb" only refreshes last_msg
        return batch

    def _reap(
        self,
        child: _Child,
        children: List[_Child],
        ready,
        delayed,
        now: float,
    ) -> Iterator[List[TaskResult]]:
        """Handle completion, hang deadlines and death for one child."""
        cfg = self.config
        if child.finished:
            children.remove(child)
            child.proc.join(timeout=5.0)
            child.conn.close()
            return
        alive = child.proc.is_alive()
        if alive:
            deadline = child.hang_deadline(cfg.timeout)
            if deadline is not None and now > deadline:
                child.kill_reason = (
                    f"hang detected: no completion within {cfg.timeout}s "
                    "(+grace) — worker killed by supervisor"
                )
                obs_metrics.counter(
                    "campaign.executor.resilient.hang_kills"
                ).inc()
            elif now - child.last_msg > cfg.heartbeat_timeout:
                child.kill_reason = (
                    f"worker heartbeat lost for {cfg.heartbeat_timeout}s "
                    "— worker killed by supervisor"
                )
                obs_metrics.counter(
                    "campaign.executor.resilient.heartbeat_losses"
                ).inc()
            if child.kill_reason is None:
                return
            child.proc.kill()
            child.proc.join(timeout=5.0)
        else:
            child.proc.join(timeout=1.0)

        # the child is dead: drain what it managed to send first
        final = self._drain(child, now)
        if final:
            yield final
        if child.finished:
            children.remove(child)
            child.conn.close()
            return
        children.remove(child)
        child.conn.close()
        if child.kill_reason is None:
            obs_metrics.counter(
                "campaign.executor.resilient.worker_deaths"
            ).inc()

        remaining = list(child.tasks)
        retry_fa = dict(child.first_attempts)
        spawns = child.spawns + 1
        lost_id = child.current_id
        if lost_id is None and spawns > cfg.retries + 2:
            # the worker keeps dying/wedging before reaching any task
            # (e.g. an import-time crash): give up on the whole group
            # rather than respawning forever
            why = child.kill_reason or (
                "worker process repeatedly died before starting a task "
                f"(exitcode {child.proc.exitcode})"
            )
            yield [
                crashed_result(t, why, attempts=retry_fa.get(t.task_id, 1))
                for t in remaining
            ]
            return
        if lost_id is not None:
            lost = next((t for t in remaining if t.task_id == lost_id), None)
            consumed = retry_fa.get(lost_id, 1)
            if lost is not None and consumed >= cfg.retries + 1:
                # budget exhausted: record the loss, run the rest
                if child.kill_reason is not None:
                    record = _failure_result(
                        lost, "timeout", child.kill_reason,
                        kind="timeout", attempts=consumed,
                    )
                else:
                    code = child.proc.exitcode
                    record = crashed_result(
                        lost,
                        "worker process died while running this task "
                        f"(exitcode {code})",
                        attempts=consumed,
                    )
                yield [record]
                remaining = [t for t in remaining if t.task_id != lost_id]
            elif lost is not None:
                retry_fa[lost_id] = consumed + 1
        if remaining:
            delay = 0.0
            if lost_id is not None and lost_id in retry_fa:
                delay = backoff_delay(
                    cfg.backoff, retry_fa[lost_id] - 1
                )
            if delay > 0:
                delayed.append((now + delay, remaining, retry_fa, spawns))
                delayed.sort(key=lambda it: it[0])
            else:
                ready.append((remaining, retry_fa, spawns))
