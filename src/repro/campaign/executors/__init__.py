"""Pluggable campaign execution backends.

Campaign execution is split from campaign bookkeeping: the runner
builds compile-key groups and records results; an :class:`Executor`
decides how the groups actually run.  Three backends ship:

``inline``
    Everything in the calling process.  No pickling, no workers —
    the debugging backend, and the default for single-job campaigns.
``pool``
    A hardened ``ProcessPoolExecutor`` fan-out (the historical
    default).  Worker death no longer hangs the campaign: the pool is
    rebuilt, the lost groups re-run in quarantine for attribution,
    and an attributed crasher becomes ``status="crashed"`` records.
``resilient``
    One supervised child per group with heartbeat + deadline
    monitoring.  Detects hangs SIGALRM cannot interrupt, retries
    crashed/hung tasks with capped exponential backoff, and degrades
    to per-task typed failure records — the campaign always finishes.

Pick one with ``CampaignConfig(executor=...)`` or ``--executor`` on
the CLI; ``run_campaign`` defaults to ``pool`` for parallel runs and
``inline`` otherwise.
"""

from .base import (
    BACKOFF_CAP,
    Executor,
    ExecutorConfig,
    RETRYABLE_KINDS,
    backoff_delay,
    executor_names,
    init_worker,
    make_executor,
    register_executor,
    run_group,
    run_task_with_retries,
)

# importing the modules registers the backends
from . import inline as _inline  # noqa: E402,F401
from . import pool as _pool  # noqa: E402,F401
from . import resilient as _resilient  # noqa: E402,F401

__all__ = [
    "BACKOFF_CAP",
    "Executor",
    "ExecutorConfig",
    "RETRYABLE_KINDS",
    "backoff_delay",
    "executor_names",
    "init_worker",
    "make_executor",
    "register_executor",
    "run_group",
    "run_task_with_retries",
]
