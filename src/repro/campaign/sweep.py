"""Declarative sweep grids: nests x machines x meshes x heuristic knobs.

A :class:`SweepSpec` is the campaign's experiment matrix; ``expand()``
turns it into the flat list of :class:`SweepTask` records the runner
consumes.  Every task carries a **stable id** — a SHA-1 digest of its
canonical JSON spec — so a re-expanded grid matches the checkpoint of a
previous (possibly interrupted) run record-for-record, which is what
makes resume exact.

Machine names come from the :mod:`repro.machine.model` registry
(``paragon`` / ``cm5`` / ``t3d``), so the grid may mix mesh ranks:
``expand()`` keeps exactly the *compatible* cells — those where the
machine's mesh rank, the mesh spec's rank and the virtual grid
dimension ``m`` agree — letting one campaign sweep ``4x4`` meshes at
``m = 2`` against Paragon/CM-5 and ``2x2x2`` cubes at ``m = 3``
against the T3D side by side.  A grid with no compatible cell at all
is refused with a friendly error.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine import machine_names, machine_spec
from .workloads import (
    Workload,
    corpus,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)

#: machine model names understood by the runner (mirrors the registry
#: state at import; use :func:`repro.machine.machine_names` for the
#: live list)
MACHINES = machine_names()


def canonical_json(obj) -> str:
    """Deterministic JSON used for task ids and spec digests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class SweepTask:
    """One (workload, machine, mesh, m, knobs) cell of the grid."""

    task_id: str
    workload: Workload
    machine: str
    mesh: Tuple[int, ...]
    m: int
    rank_weights: bool

    @property
    def compile_key(self) -> str:
        """Digest of everything the *compile* stage depends on.

        ``two_step_heuristic`` and the Feautrier baseline are functions
        of the workload, the virtual grid dimension and the heuristic
        knobs alone — the machine and mesh only enter at pricing time.
        Tasks sharing a compile key are grid cells of one compiled
        nest; the runner clusters them per worker and compiles once
        (see :mod:`repro.campaign.runner`).
        """
        spec = {
            "workload": self.workload.to_dict(),
            "m": self.m,
            "rank_weights": self.rank_weights,
        }
        return hashlib.sha1(canonical_json(spec).encode()).hexdigest()[:12]

    @staticmethod
    def make(
        workload: Workload,
        machine: str,
        mesh: Tuple[int, ...],
        m: int,
        rank_weights: bool,
    ) -> "SweepTask":
        spec = {
            "workload": workload.to_dict(),
            "machine": machine,
            "mesh": list(mesh),
            "m": m,
            "rank_weights": rank_weights,
        }
        digest = hashlib.sha1(canonical_json(spec).encode()).hexdigest()[:12]
        return SweepTask(
            task_id=digest,
            workload=workload,
            machine=machine,
            mesh=tuple(mesh),
            m=m,
            rank_weights=rank_weights,
        )


@dataclass
class SweepSpec:
    """The experiment matrix of one campaign."""

    workloads: List[Workload]
    machines: Sequence[str] = ("paragon",)
    meshes: Sequence[Tuple[int, ...]] = ((4, 4),)
    ms: Sequence[int] = (2,)
    rank_weights: Sequence[bool] = (True,)

    def __post_init__(self):
        for name in self.machines:
            machine_spec(name)  # raises a friendly ValueError if unknown

    def expand(self) -> List[SweepTask]:
        """The compatible cells of the grid in deterministic row-major
        order.

        A cell is compatible when the machine's mesh rank, the mesh
        spec's rank and the virtual grid dimension ``m`` all agree —
        mixed-rank grids (``--mesh 4x4,2x2x2 --m 2,3``) expand to
        exactly the cells that can execute.  An entirely incompatible
        grid raises a friendly ``ValueError``.
        """
        ranks = {name: machine_spec(name).mesh_rank for name in self.machines}
        tasks = [
            SweepTask.make(wl, machine, mesh, m, rw)
            for wl in self.workloads
            for machine in self.machines
            for mesh in self.meshes
            for m in self.ms
            for rw in self.rank_weights
            if ranks[machine] == len(mesh) == m
        ]
        if not tasks and self.workloads:
            cells = [
                f"{name} (mesh rank {rank})" for name, rank in ranks.items()
            ]
            raise ValueError(
                "empty sweep grid: no (machine, mesh, m) cell is "
                "compatible — each machine needs mesh rank == m "
                f"(machines: {', '.join(cells)}; meshes: "
                f"{list(len(mm) for mm in self.meshes)}-D; m: "
                f"{list(self.ms)})"
            )
        seen: Dict[str, str] = {}
        for t in tasks:
            if t.task_id in seen:
                raise ValueError(
                    f"duplicate task id {t.task_id} "
                    f"({seen[t.task_id]} vs {t.workload.name}): "
                    "grid contains a repeated cell"
                )
            seen[t.task_id] = t.workload.name
        return tasks

    def digest(self) -> str:
        """Digest of the whole expanded grid (stored in the run meta
        record; a resume with different flags is refused)."""
        return grid_digest(self.expand())


def grid_digest(tasks: Sequence[SweepTask]) -> str:
    """Digest of an already-expanded grid (avoids re-expanding when the
    caller holds the task list)."""
    ids = [t.task_id for t in tasks]
    return hashlib.sha1(canonical_json(ids).encode()).hexdigest()[:12]


def group_by_compile_key(tasks: Sequence[SweepTask]) -> List[List[SweepTask]]:
    """Cluster tasks sharing a :attr:`SweepTask.compile_key`, preserving
    first-occurrence order (groups, and tasks within a group, keep the
    grid's deterministic order).

    The runner dispatches one group — all machine x mesh cells of one
    compiled nest — to one worker, so the compile stage runs once per
    group no matter how the pool schedules work.
    """
    groups: Dict[str, List[SweepTask]] = {}
    order: List[str] = []
    for t in tasks:
        key = t.compile_key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(t)
    return [groups[k] for k in order]


def order_groups_for_dispatch(
    groups: Sequence[List[SweepTask]], largest_first: bool = False
) -> List[List[SweepTask]]:
    """Dispatch order for a batch of compile-key groups.

    With ``largest_first`` the groups are sorted by descending size
    (ties broken by first task id, so the order stays deterministic) —
    longest-processing-time-first scheduling, which keeps a process
    pool from ending on one straggler group.  Without it the
    first-occurrence grid order is preserved (the inline backend uses
    this so single-process runs append records in grid order).
    """
    if not largest_first:
        return [list(g) for g in groups]
    return sorted(
        (list(g) for g in groups),
        key=lambda g: (-len(g), g[0].task_id if g else ""),
    )


#: workload shape families understood by :func:`default_spec` and the
#: CLI's ``--shapes`` flag
SHAPES = ("rect", "tri")


def default_spec(
    seed: int = 0,
    nests: int = 20,
    include_corpus: bool = True,
    machines: Sequence[str] = ("paragon", "cm5"),
    meshes: Sequence[Tuple[int, ...]] = ((4, 4),),
    ms: Sequence[int] = (2,),
    rank_weights: Sequence[bool] = (True,),
    params: Optional[Dict[str, int]] = None,
    shapes: Sequence[str] = ("rect",),
) -> SweepSpec:
    """The standard campaign grid: ``nests`` generated workloads (plus
    the named corpus) against every compatible machine x mesh x knob
    combination.

    ``shapes`` picks the workload families: ``"rect"`` is the
    historical rectangular generator + corpus (the default — task ids
    and digests of pre-existing campaigns are unchanged); ``"tri"``
    adds the triangular/trapezoidal generator and the triangular
    kernel corpus (LU, Cholesky, back-substitution, triangular
    matmul), exercising the polyhedral domain layer end to end.
    """
    workloads: List[Workload] = []
    for shape in shapes:
        if shape == "rect":
            generated = generate_workloads(seed, nests, params=params)
            named = corpus() if include_corpus else []
        elif shape == "tri":
            generated = generate_triangular_workloads(seed, nests, params=params)
            named = triangular_corpus() if include_corpus else []
        else:
            raise ValueError(
                f"unknown workload shape {shape!r} "
                f"(known: {', '.join(SHAPES)})"
            )
        workloads += named + generated
    return SweepSpec(
        workloads=workloads,
        machines=machines,
        meshes=meshes,
        ms=ms,
        rank_weights=rank_weights,
    )


def shard_tasks(
    tasks: Sequence[SweepTask], index: int, count: int
) -> List[SweepTask]:
    """The ``index``-th of ``count`` stable partitions of a grid.

    Partitioning hashes the task-id *prefix* (the first 8 hex digits of
    the SHA-1 task id), so the assignment of a task to a shard depends
    only on the task itself: every host of a multi-host campaign
    expands the same grid, runs ``--shard i/n`` with its own ``i``, and
    the union of the shard outputs (``campaign merge``) is exactly the
    full grid — no coordination, no overlap.
    """
    if count <= 0:
        raise ValueError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index {index} out of range for {count} shard(s) "
            "(use 0..n-1)"
        )
    return [t for t in tasks if int(t.task_id[:8], 16) % count == index]
