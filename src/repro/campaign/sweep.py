"""Declarative sweep grids: nests x machines x meshes x heuristic knobs.

A :class:`SweepSpec` is the campaign's experiment matrix; ``expand()``
turns it into the flat list of :class:`SweepTask` records the runner
consumes.  Every task carries a **stable id** — a SHA-1 digest of its
canonical JSON spec — so a re-expanded grid matches the checkpoint of a
previous (possibly interrupted) run record-for-record, which is what
makes resume exact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .workloads import Workload, corpus, generate_workloads

#: machine model names understood by the runner
MACHINES = ("paragon", "cm5")


def canonical_json(obj) -> str:
    """Deterministic JSON used for task ids and spec digests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class SweepTask:
    """One (workload, machine, mesh, m, knobs) cell of the grid."""

    task_id: str
    workload: Workload
    machine: str
    mesh: Tuple[int, int]
    m: int
    rank_weights: bool

    @staticmethod
    def make(
        workload: Workload,
        machine: str,
        mesh: Tuple[int, int],
        m: int,
        rank_weights: bool,
    ) -> "SweepTask":
        spec = {
            "workload": workload.to_dict(),
            "machine": machine,
            "mesh": list(mesh),
            "m": m,
            "rank_weights": rank_weights,
        }
        digest = hashlib.sha1(canonical_json(spec).encode()).hexdigest()[:12]
        return SweepTask(
            task_id=digest,
            workload=workload,
            machine=machine,
            mesh=tuple(mesh),
            m=m,
            rank_weights=rank_weights,
        )


@dataclass
class SweepSpec:
    """The experiment matrix of one campaign."""

    workloads: List[Workload]
    machines: Sequence[str] = ("paragon",)
    meshes: Sequence[Tuple[int, int]] = ((4, 4),)
    ms: Sequence[int] = (2,)
    rank_weights: Sequence[bool] = (True,)

    def __post_init__(self):
        for name in self.machines:
            if name not in MACHINES:
                raise ValueError(
                    f"unknown machine {name!r} (choose from {MACHINES})"
                )

    def expand(self) -> List[SweepTask]:
        """The grid in deterministic row-major order."""
        tasks = [
            SweepTask.make(wl, machine, mesh, m, rw)
            for wl in self.workloads
            for machine in self.machines
            for mesh in self.meshes
            for m in self.ms
            for rw in self.rank_weights
        ]
        seen: Dict[str, str] = {}
        for t in tasks:
            if t.task_id in seen:
                raise ValueError(
                    f"duplicate task id {t.task_id} "
                    f"({seen[t.task_id]} vs {t.workload.name}): "
                    "grid contains a repeated cell"
                )
            seen[t.task_id] = t.workload.name
        return tasks

    def digest(self) -> str:
        """Digest of the whole expanded grid (stored in the run meta
        record; a resume with different flags is refused)."""
        return grid_digest(self.expand())


def grid_digest(tasks: Sequence[SweepTask]) -> str:
    """Digest of an already-expanded grid (avoids re-expanding when the
    caller holds the task list)."""
    ids = [t.task_id for t in tasks]
    return hashlib.sha1(canonical_json(ids).encode()).hexdigest()[:12]


def default_spec(
    seed: int = 0,
    nests: int = 20,
    include_corpus: bool = True,
    machines: Sequence[str] = ("paragon", "cm5"),
    meshes: Sequence[Tuple[int, int]] = ((4, 4),),
    ms: Sequence[int] = (2,),
    rank_weights: Sequence[bool] = (True,),
    params: Optional[Dict[str, int]] = None,
) -> SweepSpec:
    """The standard campaign grid: ``nests`` generated workloads (plus
    the named corpus) against every machine x mesh x knob combination."""
    workloads = generate_workloads(seed, nests, params=params)
    if include_corpus:
        workloads = corpus() + workloads
    return SweepSpec(
        workloads=workloads,
        machines=machines,
        meshes=meshes,
        ms=ms,
        rank_weights=rank_weights,
    )
