"""Experiment-orchestration subsystem: generated workloads, declarative
sweep grids, a parallel checkpoint/resume runner and a JSONL result
store.

The campaign layer sits on top of the whole compilation pipeline
(:func:`repro.compile_nest` down to the machine models) and evaluates
the paper's two-step heuristic *in bulk*: thousands of nests x machine
models x mesh sizes x heuristic knobs instead of one hand-written nest
at a time.

* :mod:`~repro.campaign.workloads` — seeded random nest generator +
  named corpus (``repro.ir.examples`` and the ``examples/*.py`` kernels);
* :mod:`~repro.campaign.sweep` — grid spec expansion with stable task ids;
* :mod:`~repro.campaign.runner` — multiprocessing execution, per-task
  error capture and timeouts, JSONL checkpoint/resume;
* :mod:`~repro.campaign.store` — typed result records, tolerant JSONL
  loading, aggregation into summary tables.

CLI: ``python -m repro campaign run|resume|summarize``.
"""

from .runner import (
    CampaignConfig,
    CampaignOutcome,
    CampaignSpecMismatch,
    clear_compile_cache,
    compile_cache_stats,
    execute_task,
    run_campaign,
    set_compile_cache_size,
)
from .store import RunStore, TaskResult, merge_stores, summarize_results
from .sweep import (
    MACHINES,
    SHAPES,
    SweepSpec,
    SweepTask,
    default_spec,
    grid_digest,
    group_by_compile_key,
    shard_tasks,
)
from .workloads import (
    Workload,
    corpus,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)

__all__ = [
    "Workload",
    "corpus",
    "triangular_corpus",
    "generate_workloads",
    "generate_triangular_workloads",
    "SweepSpec",
    "SweepTask",
    "MACHINES",
    "SHAPES",
    "default_spec",
    "grid_digest",
    "group_by_compile_key",
    "shard_tasks",
    "merge_stores",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignSpecMismatch",
    "execute_task",
    "run_campaign",
    "clear_compile_cache",
    "compile_cache_stats",
    "set_compile_cache_size",
    "RunStore",
    "TaskResult",
    "summarize_results",
]
