"""Experiment-orchestration subsystem: generated workloads, declarative
sweep grids, a parallel checkpoint/resume runner and a JSONL result
store.

The campaign layer sits on top of the whole compilation pipeline
(:func:`repro.compile_nest` down to the machine models) and evaluates
the paper's two-step heuristic *in bulk*: thousands of nests x machine
models x mesh sizes x heuristic knobs instead of one hand-written nest
at a time.

* :mod:`~repro.campaign.workloads` — seeded random nest generator +
  named corpus (``repro.ir.examples`` and the ``examples/*.py`` kernels);
* :mod:`~repro.campaign.sweep` — grid spec expansion with stable task ids;
* :mod:`~repro.campaign.runner` — campaign orchestration, per-task
  error capture and timeouts, JSONL checkpoint/resume;
* :mod:`~repro.campaign.executors` — pluggable execution backends
  (``inline``, ``pool``, ``resilient``) with retry/backoff,
  worker-death recovery and hang detection;
* :mod:`~repro.campaign.faults` — deterministic fault-injection
  harness (``REPRO_FAULT_INJECT``) for chaos testing;
* :mod:`~repro.campaign.store` — typed result records, tolerant JSONL
  loading, aggregation into summary tables.

CLI: ``python -m repro campaign run|resume|summarize``.
"""

from .executors import (
    BACKOFF_CAP,
    Executor,
    ExecutorConfig,
    RETRYABLE_KINDS,
    executor_names,
    make_executor,
)
from .faults import FAULT_ENV, InjectedFault, parse_fault_spec, would_fault
from .runner import (
    CampaignConfig,
    CampaignOutcome,
    CampaignSpecMismatch,
    baseline_cache_stats,
    clear_baseline_cache,
    clear_compile_cache,
    code_fingerprint,
    compile_cache_dir,
    compile_cache_stats,
    crashed_result,
    execute_task,
    group_pricing_allowed,
    price_group_batched,
    run_campaign,
    set_baseline_cache_size,
    set_compile_cache_dir,
    set_compile_cache_size,
    set_group_pricing,
)
from .store import (
    ERROR_KINDS,
    STATUSES,
    RunStore,
    TaskResult,
    merge_stores,
    summarize_results,
)
from .sweep import (
    MACHINES,
    SHAPES,
    SweepSpec,
    SweepTask,
    default_spec,
    grid_digest,
    group_by_compile_key,
    shard_tasks,
)
from .workloads import (
    Workload,
    corpus,
    generate_triangular_workloads,
    generate_workloads,
    triangular_corpus,
)

__all__ = [
    "Workload",
    "corpus",
    "triangular_corpus",
    "generate_workloads",
    "generate_triangular_workloads",
    "SweepSpec",
    "SweepTask",
    "MACHINES",
    "SHAPES",
    "default_spec",
    "grid_digest",
    "group_by_compile_key",
    "shard_tasks",
    "merge_stores",
    "CampaignConfig",
    "CampaignOutcome",
    "CampaignSpecMismatch",
    "execute_task",
    "run_campaign",
    "crashed_result",
    "clear_compile_cache",
    "code_fingerprint",
    "compile_cache_dir",
    "compile_cache_stats",
    "set_compile_cache_dir",
    "set_compile_cache_size",
    "clear_baseline_cache",
    "baseline_cache_stats",
    "set_baseline_cache_size",
    "group_pricing_allowed",
    "price_group_batched",
    "set_group_pricing",
    "Executor",
    "ExecutorConfig",
    "executor_names",
    "make_executor",
    "RETRYABLE_KINDS",
    "BACKOFF_CAP",
    "FAULT_ENV",
    "InjectedFault",
    "parse_fault_spec",
    "would_fault",
    "RunStore",
    "TaskResult",
    "ERROR_KINDS",
    "STATUSES",
    "summarize_results",
]
