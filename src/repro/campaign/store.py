"""Typed campaign results and the JSONL run store.

One campaign run is one JSONL file: a ``meta`` record first (grid
digest, spec echo), then one ``result`` record per completed task,
appended and flushed as tasks finish.  The loader is tolerant of a
truncated final line — the expected state of a file whose writer was
killed mid-record — so a resumed campaign picks up exactly the tasks
whose results made it to disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .._config import env_flag
from ..report import format_mesh

#: classification keys aggregated by the summary (mapping counts)
CLASS_KEYS = ("local", "translation", "macro", "decomposed", "general")

#: the structured error taxonomy recorded in ``TaskResult.error_kind``:
#: ``compile``/``price`` locate deterministic failures by pipeline
#: stage, ``timeout`` covers wall-clock caps and supervisor-detected
#: hangs, ``crash`` is worker death (SIGKILL, segfault), ``oom`` is
#: memory exhaustion caught in-process, ``fault`` is an injected
#: transient failure (see :mod:`repro.campaign.faults`)
ERROR_KINDS = ("compile", "price", "timeout", "crash", "oom", "fault")

#: ``TaskResult.status`` values ("crashed" = the worker died under the
#: task; resilient/pool executors record it instead of hanging)
STATUSES = ("ok", "error", "timeout", "crashed")


@dataclass
class TaskResult:
    """Outcome of one sweep task.

    Deterministic payload (everything the compiler and the machine
    models computed) plus one wall-clock field, ``seconds``, which is
    excluded from equality comparisons so an interrupted-and-resumed
    campaign can be checked result-identical to an uninterrupted one.
    """

    task_id: str
    workload: str
    machine: str
    mesh: Tuple[int, ...]
    m: int
    rank_weights: bool
    status: str  # see STATUSES
    counts: Dict[str, int] = field(default_factory=dict)
    residuals: int = 0
    total_time: float = 0.0
    total_messages: int = 0
    total_volume: int = 0
    baseline_residuals: int = 0
    baseline_time: float = 0.0
    error: Optional[str] = None
    #: structured failure class (see ERROR_KINDS); None for ok records
    error_kind: Optional[str] = None
    #: attempts consumed (retry/backoff telemetry); like ``seconds``
    #: this depends on the run's fault history, not the task, so it is
    #: excluded from equality and from ``deterministic_dict``
    attempts: int = field(default=1, compare=False)
    seconds: float = field(default=0.0, compare=False)
    #: whether this task's compile stage was served from the runner's
    #: per-worker cache — in-memory telemetry only, *never* written to
    #: the JSONL record (compile-once/price-many must leave the stored
    #: records byte-identical to a recompile-every-cell run)
    compile_cache_hit: Optional[bool] = field(default=None, compare=False)
    #: whether this task's Feautrier-baseline price was served from the
    #: runner's per-worker price memo — in-memory telemetry only, same
    #: byte-identity contract as ``compile_cache_hit``
    baseline_cache_hit: Optional[bool] = field(default=None, compare=False)
    #: per-task span tree (``{path: {"count", "seconds"}}``) captured by
    #: the worker while tracing is enabled — in-memory telemetry shipped
    #: back through the result pipe and written to the ``--trace`` JSONL
    #: file, *never* to the result store (traces must leave the stored
    #: records byte-identical to an untraced run)
    trace: Optional[Dict] = field(default=None, compare=False)

    def deterministic_dict(self) -> Dict:
        """The payload minus wall-clock timing and attempt counts (the
        resume-equality basis: a faulted-then-retried campaign must
        converge to the same deterministic payload as a clean one)."""
        d = self.to_dict()
        d.pop("seconds", None)
        d.pop("attempts", None)
        return d

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["record"] = "result"
        d["mesh"] = list(self.mesh)
        d.pop("compile_cache_hit", None)
        d.pop("baseline_cache_hit", None)
        d.pop("trace", None)
        # default-valued taxonomy fields are omitted so records of a
        # fault-free campaign stay byte-identical to the historical
        # format (golden-tested)
        if self.error_kind is None:
            d.pop("error_kind", None)
        if self.attempts == 1:
            d.pop("attempts", None)
        return d

    @staticmethod
    def from_dict(d: Dict) -> "TaskResult":
        return TaskResult(
            task_id=d["task_id"],
            workload=d["workload"],
            machine=d["machine"],
            mesh=tuple(d["mesh"]),
            m=d["m"],
            rank_weights=bool(d["rank_weights"]),
            status=d["status"],
            counts={k: int(v) for k, v in d.get("counts", {}).items()},
            residuals=int(d.get("residuals", 0)),
            total_time=float(d.get("total_time", 0.0)),
            total_messages=int(d.get("total_messages", 0)),
            total_volume=int(d.get("total_volume", 0)),
            baseline_residuals=int(d.get("baseline_residuals", 0)),
            baseline_time=float(d.get("baseline_time", 0.0)),
            error=d.get("error"),
            error_kind=d.get("error_kind"),
            attempts=int(d.get("attempts", 1)),
            seconds=float(d.get("seconds", 0.0)),
        )


class RunStore:
    """Append-only JSONL store for one campaign run.

    ``fsync`` controls whether every append is forced to stable storage
    (survives power loss, not just process death).  Appends are always
    flushed to the OS — a killed writer loses at most the in-flight
    record either way — but per-record ``fsync`` costs real throughput
    on large campaigns, so it is **opt-in**: pass ``fsync=True`` or set
    ``REPRO_STORE_FSYNC=1``.
    """

    def __init__(self, path: str, fsync: Optional[bool] = None):
        self.path = path
        self.fsync = env_flag("REPRO_STORE_FSYNC") if fsync is None else fsync

    # -- writing --------------------------------------------------------

    def _tmp_path(self) -> str:
        return f"{self.path}.tmp.{os.getpid()}"

    def start(self, meta: Dict) -> None:
        """Create/truncate the file and write the meta record.

        The write is atomic (temp file + rename): a crash mid-``start``
        leaves either the previous file or the new one-line file on
        disk, never a half-written meta record.
        """
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        tmp = self._tmp_path()
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps({"record": "meta", **meta}, sort_keys=True))
                fh.write("\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def compact(self, meta: Dict, results: "Iterable[TaskResult]") -> None:
        """Atomically rewrite the store as ``meta`` + ``results``.

        Used by ``retry_failures`` resume to drop superseded failure
        lines (a retried task's fresh record already wins by
        last-record-wins; compaction keeps the checkpoint from growing
        one stale line per retry).  Temp-file + rename, so a crash
        mid-compaction leaves the previous file intact.
        """
        meta = {k: v for k, v in meta.items() if k != "_skipped_lines"}
        meta.pop("record", None)
        tmp = self._tmp_path()
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps({"record": "meta", **meta}, sort_keys=True))
                fh.write("\n")
                for r in results:
                    fh.write(json.dumps(r.to_dict(), sort_keys=True))
                    fh.write("\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def append_meta(self, meta: Dict) -> None:
        """Append a meta record without touching existing results (used
        when a resumed checkpoint lost its original meta line; the
        loader keeps the last meta record seen)."""
        with open(self.path, "a") as fh:
            fh.write(json.dumps({"record": "meta", **meta}, sort_keys=True))
            fh.write("\n")

    def repair_trailing_newline(self) -> None:
        """Terminate a dangling half-record left by a killed writer.

        Without this, the next ``append`` would concatenate onto the
        truncated line and corrupt one more record; with it, the
        partial line is isolated and skipped by :meth:`load`.
        """
        if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
            return
        with open(self.path, "rb+") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                fh.write(b"\n")

    def append(self, result: TaskResult) -> None:
        """Append one result and flush — this *is* the checkpoint."""
        with open(self.path, "a") as fh:
            fh.write(json.dumps(result.to_dict(), sort_keys=True))
            fh.write("\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    # -- reading --------------------------------------------------------

    def load(self) -> Tuple[Dict, Dict[str, TaskResult]]:
        """Meta record + results keyed by task id.

        Undecodable lines (a record truncated by a kill) are skipped;
        their count is reported under meta key ``_skipped_lines``.
        """
        meta: Dict = {}
        results: Dict[str, TaskResult] = {}
        skipped = 0
        if not os.path.exists(self.path):
            return meta, results
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                    if d.get("record") == "meta":
                        meta = d
                    else:
                        r = TaskResult.from_dict(d)
                        results[r.task_id] = r
                except (ValueError, KeyError, TypeError):
                    skipped += 1
        if skipped:
            meta = dict(meta)
            meta["_skipped_lines"] = skipped
        return meta, results

    def completed_ids(self) -> List[str]:
        _, results = self.load()
        return sorted(results)


def merge_stores(
    paths: Sequence[str], out_path: str, force: bool = False
) -> Dict:
    """Concatenate + dedupe shard JSONL files into one store.

    Multi-host campaigns run ``campaign run --shard i/n`` per host and
    merge the shard outputs here: results are deduplicated by task id
    (later files win, matching the loader's last-record-wins rule), the
    merged meta carries the shards' common ``spec_digest`` and the
    shard file list, and results are written in sorted task-id order so
    the merged file is deterministic regardless of shard completion
    order.  The merge is **crash-safe**: output is written to a temp
    file and renamed into place, so a merge killed mid-write never
    leaves a half-merged (or clobbered) ``out_path`` — in particular a
    pre-existing file at ``out_path`` survives any failure.  Shards
    recorded for *different* grids are refused unless ``force`` is
    given (the CLI spells it ``--allow-mixed``).

    Returns a summary dict: ``results``, ``duplicates``, ``shards``,
    ``spec_digest``, ``skipped_lines``.
    """
    metas: List[Dict] = []
    merged: Dict[str, TaskResult] = {}
    duplicates = 0
    skipped = 0
    for p in paths:
        meta, results = RunStore(p).load()
        if not meta and not results:
            raise ValueError(f"no campaign records in {p!r}")
        metas.append(meta)
        skipped += meta.get("_skipped_lines", 0)
        for tid, r in results.items():
            if tid in merged:
                duplicates += 1
            merged[tid] = r
    digests = {m.get("spec_digest") for m in metas if m.get("spec_digest")}
    if len(digests) > 1 and not force:
        raise ValueError(
            "shards were recorded for different grids (spec digests "
            f"{', '.join(sorted(digests))}): refusing to merge them — "
            "pass force=True/--allow-mixed to override"
        )
    out_meta = {
        "spec_digest": digests.pop() if len(digests) == 1 else None,
        "merged_from": [os.path.basename(p) for p in paths],
        "shards": len(paths),
    }
    # write-temp-then-rename: the whole merged store lands atomically
    RunStore(out_path).compact(
        out_meta, (merged[tid] for tid in sorted(merged))
    )
    return {
        "results": len(merged),
        "duplicates": duplicates,
        "shards": len(paths),
        "spec_digest": out_meta["spec_digest"],
        "skipped_lines": skipped,
    }


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def summarize_results(results: Iterable[TaskResult]) -> List[Dict]:
    """Aggregate per (machine, mesh, m, rank_weights) group.

    Each row reports task counts by status, the residual-communication
    totals of the heuristic vs the greedy baseline, the classification
    histogram of the heuristic's residuals, the mean
    baseline/heuristic execution-time ratio (>= 1 means the two-step
    heuristic won) over the tasks where both times are positive, and
    the heuristic/Feautrier-baseline **residual ratio** (<= 1 means the
    heuristic zeroed at least as many residual communications; tracked
    per PR next to the throughput trend so scenario-quality drift is as
    visible as perf drift).
    """
    groups: Dict[Tuple, List[TaskResult]] = {}
    for r in results:
        key = (r.machine, r.mesh, r.m, r.rank_weights)
        groups.setdefault(key, []).append(r)

    rows: List[Dict] = []
    for key in sorted(groups):
        machine, mesh, m, rw = key
        rs = groups[key]
        ok = [r for r in rs if r.status == "ok"]
        ratios = [
            r.baseline_time / r.total_time
            for r in ok
            if r.total_time > 0 and r.baseline_time > 0
        ]
        row = {
            "machine": machine,
            "mesh": format_mesh(mesh),
            "m": m,
            "rank_weights": rw,
            "tasks": len(rs),
            "ok": len(ok),
            "errors": sum(1 for r in rs if r.status == "error"),
            "timeouts": sum(1 for r in rs if r.status == "timeout"),
            "crashed": sum(1 for r in rs if r.status == "crashed"),
            "residuals": sum(r.residuals for r in ok),
            "baseline_residuals": sum(r.baseline_residuals for r in ok),
            # None (JSON null) rather than NaN, which json.dump would
            # emit as a token strict parsers reject
            "mean_time_ratio": (
                sum(ratios) / len(ratios) if ratios else None
            ),
            "seconds": sum(r.seconds for r in rs),
        }
        # Feautrier-baseline residual ratio: heuristic residuals per
        # baseline residual for this group (quality trend line)
        row["residual_ratio"] = (
            row["residuals"] / row["baseline_residuals"]
            if row["baseline_residuals"] > 0
            else None
        )
        # per-machine throughput trend line: cells priced per summed
        # task-second of this (machine, mesh, m, knobs) group
        row["tasks_per_second"] = (
            len(rs) / row["seconds"] if row["seconds"] > 0 else None
        )
        for k in CLASS_KEYS:
            row[k] = sum(r.counts.get(k, 0) for r in ok)
        rows.append(row)
    return rows
