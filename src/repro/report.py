"""ASCII reporting helpers shared by examples and the benchmark
harness: mapping summaries, communication tables and simple bar/series
rendering (the repository has no plotting dependency, so "figures" are
printed as labelled series)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_mesh(dims: Sequence[int]) -> str:
    """Render an N-D mesh spec the way the CLI spells it:
    ``(4, 4)`` → ``"4x4"``, ``(2, 2, 2)`` → ``"2x2x2"``."""
    return "x".join(str(d) for d in dims)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence, ys: Sequence[float], width: int = 40
) -> str:
    """Render one figure series as a labelled ASCII bar chart."""
    if not ys:
        return f"{label}: (empty)"
    top = max(max(ys), 1e-12)
    lines = [label]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, round(width * y / top)) if y > 0 else ""
        lines.append(f"  {str(x):>6s} | {bar} {y:.2f}")
    return "\n".join(lines)


def format_mapping_summary(result) -> str:
    """One-paragraph summary of a :class:`MappingResult`."""
    counts = result.counts()
    parts = [f"{counts.get('local', 0)} local"]
    for key in ("translation", "macro", "decomposed", "general"):
        if counts.get(key):
            parts.append(f"{counts[key]} {key}")
    rot = len(result.rotations)
    rot_txt = f"; {rot} component rotation(s)" if rot else ""
    return "mapping: " + ", ".join(parts) + rot_txt


def format_campaign_summary(rows: Sequence[Dict]) -> str:
    """Aggregate table for a campaign run (rows from
    :func:`repro.campaign.summarize_results`, one per machine x mesh x
    m x rank-weights group)."""
    if not rows:
        return "campaign: no results"
    headers = [
        "machine", "mesh", "m", "rank_wt", "tasks", "ok", "err", "t/o",
        "crash", "local", "transl", "macro", "decomp", "general",
        "resid", "base_resid", "res_ratio", "base/heur", "secs", "tasks/s",
    ]
    table_rows = [
        [
            r["machine"], r["mesh"], r["m"],
            "on" if r["rank_weights"] else "off",
            r["tasks"], r["ok"], r["errors"], r["timeouts"],
            r.get("crashed", 0),
            r["local"], r["translation"], r["macro"], r["decomposed"],
            r["general"], r["residuals"], r["baseline_residuals"],
            "-" if r.get("residual_ratio") is None else r["residual_ratio"],
            "-" if r["mean_time_ratio"] is None else r["mean_time_ratio"],
            r["seconds"],
            "-" if r.get("tasks_per_second") is None else r["tasks_per_second"],
        ]
        for r in rows
    ]
    return format_table(headers, table_rows, title="campaign summary")


def _fmt(x) -> str:
    if isinstance(x, float):
        return f"{x:.2f}"
    return str(x)
