"""Spans: nested wall-time instrumentation with a disabled fast path.

A *span* names one stage of work::

    from repro.obs import span

    with span("align.step1"):
        ...

Entering a span pushes its name onto a per-thread stack; on exit the
elapsed ``perf_counter`` time is recorded under the span's **path** —
the ``/``-joined stack (``"compile/align.step1"``), so parent/child
nesting survives aggregation.  The aggregate keeps one ``(count,
seconds)`` pair per path; :func:`span_snapshot` exports it as a plain
dict and :func:`merge_spans` folds a worker's exported tree back into
the local aggregate (how multiprocessing campaigns reassemble per-task
traces shipped through ``TaskResult.trace``).

**Disabled is the default and costs almost nothing**: :func:`span`
checks one module-level flag and returns a shared no-op context
manager — no allocation, no clock read, no locking (the overhead gate
in ``benchmarks/bench_trace_overhead.py`` pins this).  Enable with
``REPRO_TRACE=1``, :func:`enable`, or ``campaign run --trace``.

Thread safety: the span stack is thread-local; the aggregate and the
capture list are guarded by one lock taken only on span *exit* (and
only while tracing is enabled).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import wraps
from typing import Callable, Dict, Iterator, List, Optional

from .._config import env_flag

#: environment knob: ``REPRO_TRACE=1`` enables tracing at import time
TRACE_ENV = "REPRO_TRACE"

#: path separator between nested span names
SEP = "/"

_enabled: bool = env_flag(TRACE_ENV, False)

_lock = threading.Lock()
#: path -> [count, total seconds]
_aggregate: Dict[str, List[float]] = {}
#: live capture buffers (same layout as the aggregate)
_captures: List[Dict[str, List[float]]] = []


class _Local(threading.local):
    def __init__(self):
        self.stack: List[str] = []


_local = _Local()


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "count", "_t0")

    def __init__(self, name: str, count: int = 1):
        self.name = name
        self.count = count

    def __enter__(self):
        _local.stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dt = time.perf_counter() - self._t0
        stack = _local.stack
        path = SEP.join(stack)
        stack.pop()
        c = self.count
        with _lock:
            for buf in _captures:
                entry = buf.get(path)
                if entry is None:
                    buf[path] = [c, dt]
                else:
                    entry[0] += c
                    entry[1] += dt
            entry = _aggregate.get(path)
            if entry is None:
                _aggregate[path] = [c, dt]
            else:
                entry[0] += c
                entry[1] += dt
        return False


def span(name: str, count: int = 1):
    """A context manager timing one named stage (no-op when tracing is
    disabled — the check is one module-flag read).

    ``count`` is what the span's exit adds to its path's call counter
    (default 1).  Fused spans use it to keep logical-unit accounting:
    one ``exec.segmented`` kernel call pricing 37 phases records
    ``count=37``, so stage reports keep counting *phases*, not kernel
    launches, after the fusion."""
    if not _enabled:
        return _NOOP
    return _Span(name, count)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span`; the span name defaults to the
    function's ``__name__``.  Enablement is checked per call, so a
    decorated function pays only the flag read while tracing is off."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__name__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _Span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ---------------------------------------------------------------------------
# enablement
# ---------------------------------------------------------------------------


def set_enabled(on: bool) -> bool:
    """Set the tracing flag; returns the previous value (so callers can
    restore it — the campaign runner enables tracing for the duration
    of a ``--trace`` run only)."""
    global _enabled
    prev = _enabled
    _enabled = bool(on)
    return prev


def enable() -> None:
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


def is_enabled() -> bool:
    return _enabled


# ---------------------------------------------------------------------------
# aggregation / export
# ---------------------------------------------------------------------------


def _freeze(buf: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    return {
        path: {"count": int(c), "seconds": s}
        for path, (c, s) in sorted(buf.items())
    }


@contextmanager
def capture() -> Iterator[Dict[str, List[float]]]:
    """Collect every span recorded while the context is active into a
    dedicated buffer (in addition to the global aggregate).  Used by
    the campaign runner to attribute spans to one task; freeze the
    yielded buffer with :func:`freeze_capture` after exit."""
    buf: Dict[str, List[float]] = {}
    with _lock:
        _captures.append(buf)
    try:
        yield buf
    finally:
        with _lock:
            _captures.remove(buf)


def freeze_capture(buf: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    """A :func:`capture` buffer as the exported snapshot layout
    (``{path: {"count": n, "seconds": s}}``)."""
    return _freeze(buf)


def span_snapshot() -> Dict[str, Dict[str, float]]:
    """The process-wide span aggregate: ``{path: {"count", "seconds"}}``,
    sorted by path (parents sort before their children)."""
    with _lock:
        return _freeze(_aggregate)


def merge_spans(tree: Optional[Dict]) -> None:
    """Fold an exported span tree (snapshot layout, or the raw
    ``[count, seconds]`` capture layout) into the local aggregate —
    how per-task traces shipped back from worker processes land in the
    campaign-level totals."""
    if not tree:
        return
    with _lock:
        for path, val in tree.items():
            if isinstance(val, dict):
                c, s = int(val.get("count", 0)), float(val.get("seconds", 0.0))
            else:
                c, s = int(val[0]), float(val[1])
            entry = _aggregate.get(path)
            if entry is None:
                _aggregate[path] = [c, s]
            else:
                entry[0] += c
                entry[1] += s


def clear_spans() -> None:
    """Reset the process-wide aggregate (tests, fresh campaign runs)."""
    with _lock:
        _aggregate.clear()
