"""Zero-dependency observability: structured tracing + metrics.

The pipeline — parse → dependence → alignment → decomposition →
scheduling → legality → mapped pricing — used to be visible only
through a global ``cProfile`` dump and three mutually inconsistent
ad-hoc stat surfaces.  This package replaces all of that with one
subsystem:

* :mod:`~repro.obs.tracing` — **spans**: a context-manager/decorator
  API (``with span("align.step1"): ...``) recording wall time, call
  counts and parent/child nesting, with a no-op fast path when tracing
  is disabled (the default) and per-task capture buffers so worker
  processes ship their span trees back through
  :class:`~repro.campaign.store.TaskResult`;
* :mod:`~repro.obs.metrics` — a **registry** of counters, gauges and
  histograms plus snapshot *providers*, unifying the pre-existing cache
  stats (linalg normal forms, route caches, per-worker compile LRU) and
  the executor lifecycle counters under one namespace with a single
  ``snapshot()`` → plain-dict export;
* :mod:`~repro.obs.trace` — the JSONL **trace file** written by
  ``campaign run --trace out.jsonl`` and the per-stage breakdown report
  behind ``python -m repro trace report`` / ``campaign summarize
  --timings``.

Knob: ``REPRO_TRACE=1`` enables tracing process-wide (the CLI's
``--trace`` flag enables it for one campaign); executor backends
forward the enablement to their workers explicitly, so spawn-context
workers trace too.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    clear_metrics,
    counter,
    gauge,
    histogram,
    register_provider,
    snapshot,
)
from .trace import (
    TraceWriter,
    format_span_table,
    format_stage_breakdown,
    format_trace_report,
    load_trace,
    stage_rows,
    stage_totals,
)
from .tracing import (
    TRACE_ENV,
    capture,
    clear_spans,
    disable,
    enable,
    freeze_capture,
    is_enabled,
    merge_spans,
    set_enabled,
    span,
    span_snapshot,
    traced,
)

__all__ = [
    "TRACE_ENV",
    "span",
    "traced",
    "capture",
    "freeze_capture",
    "enable",
    "disable",
    "set_enabled",
    "is_enabled",
    "span_snapshot",
    "merge_spans",
    "clear_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "register_provider",
    "snapshot",
    "clear_metrics",
    "TraceWriter",
    "load_trace",
    "stage_rows",
    "stage_totals",
    "format_stage_breakdown",
    "format_span_table",
    "format_trace_report",
]
