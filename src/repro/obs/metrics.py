"""The metrics registry: counters, gauges, histograms, providers.

One process-wide :class:`MetricsRegistry` (module-level ``REGISTRY``)
holds every metric under a dotted namespace, get-or-create style::

    from repro.obs import counter

    counter("campaign.compile_cache.hits").inc()

``snapshot()`` exports everything as one plain dict — counters and
gauges as numbers, histograms as small stat dicts — plus the output of
registered **providers**: callables contributing structured sections
for state that lives elsewhere (the per-mesh route caches, the linalg
normal-form caches, the compile LRU).  Providers are how the three
formerly bespoke stats surfaces report through one namespace without
obs owning their storage.

This is also the export the future ``python -m repro serve`` daemon
will put behind its ``/metrics`` endpoint: everything JSON-serializable,
no third-party client library.

Metric updates are plain attribute arithmetic (GIL-coalesced, not
strictly atomic across free-running threads) — the campaign paths that
feed them are single-threaded per process, and worker-process metrics
travel back through task results, not shared memory.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union


class Counter:
    """A monotonically increasing count (resettable for tests)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0


class Gauge:
    """A point-in-time value (queue depths, cache sizes)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = 0.0

    def set(self, v: float) -> None:
        self._value = v

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Streaming summary stats of observed values (count/sum/min/max).

    Deliberately bucket-free: the consumers here want totals and
    extremes, and a plain dict export, not quantile sketches.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.reset()

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and providers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        self._providers: Dict[str, Callable[[], Dict]] = {}

    def _get(self, name: str, cls) -> Metric:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls(name)
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(m).__name__}, "
                    f"not a {cls.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def register_provider(self, name: str, fn: Callable[[], Dict]) -> None:
        """Register (or replace) a snapshot section computed on demand —
        for stats whose storage lives outside the registry."""
        with self._lock:
            self._providers[name] = fn

    def provider_names(self) -> List[str]:
        with self._lock:
            return sorted(self._providers)

    def snapshot(self, providers: bool = True) -> Dict:
        """Everything as one plain (JSON-serializable) dict: counters
        and gauges by value, histograms as stat dicts, provider
        sections under their registered names.  A provider that raises
        contributes an ``{"error": ...}`` stub rather than sinking the
        whole export."""
        with self._lock:
            metrics = dict(self._metrics)
            provs = dict(self._providers) if providers else {}
        out: Dict = {}
        for name in sorted(metrics):
            m = metrics[name]
            out[name] = m.snapshot() if isinstance(m, Histogram) else m.value
        for name in sorted(provs):
            try:
                out[name] = provs[name]()
            except Exception as exc:  # pragma: no cover - defensive
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def clear(self) -> None:
        """Reset every registered metric (registrations and providers
        survive; only the values go back to zero)."""
        with self._lock:
            for m in self._metrics.values():
                m.reset()


#: the process-wide default registry
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def register_provider(name: str, fn: Callable[[], Dict]) -> None:
    REGISTRY.register_provider(name, fn)


def snapshot(providers: bool = True) -> Dict:
    return REGISTRY.snapshot(providers=providers)


def clear_metrics() -> None:
    REGISTRY.clear()
