"""Trace files: streaming JSONL writer, loader and the stage report.

``campaign run --trace out.jsonl`` streams one record per traced task
*alongside* the result store (which stays byte-identical — traces never
touch the checkpoint format):

* ``{"record": "trace_meta", ...}`` — first line: spec digest + run
  configuration echo;
* ``{"record": "task_trace", "task_id": ..., "compile_key": ...,
  "spans": {path: {"count", "seconds"}}, ...}`` — one per completed
  task, appended and flushed the moment the result lands (a killed
  campaign loses at most the in-flight task's trace);
* ``{"record": "campaign_spans", "spans": ...}`` — final line: the
  campaign-level span aggregate (parent-side store/dispatch spans plus
  every worker span tree merged back);
* ``{"record": "metrics", "metrics": ...}`` — final line: the unified
  ``obs.snapshot()`` (cache stats, executor lifecycle counters).

``python -m repro trace report out.jsonl`` renders the per-stage
breakdown **from the file alone**: per compile-key group, how much wall
time went to the compile stage vs. the price stage vs. executor
overhead (dispatch, IPC, retries — anything between task wall time and
traced span time), plus the global span table.  ``campaign summarize
--timings out.jsonl`` appends the same report to the result summary.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from ..report import format_table

#: per-task span paths whose top-level segment is a pipeline stage
STAGES = ("compile", "price")


class TraceWriter:
    """Append-and-flush JSONL writer for one traced campaign run."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "w")

    def _write(self, record: Dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")
        self._fh.flush()

    def write_meta(self, meta: Dict) -> None:
        self._write({"record": "trace_meta", **meta})

    def write_task(
        self, result, compile_key: Optional[str] = None
    ) -> None:
        """One ``task_trace`` record from a
        :class:`~repro.campaign.store.TaskResult` (its in-memory
        ``trace`` field holds the worker's span tree)."""
        self._write(
            {
                "record": "task_trace",
                "task_id": result.task_id,
                "workload": result.workload,
                "machine": result.machine,
                "mesh": list(result.mesh),
                "m": result.m,
                "compile_key": compile_key,
                "status": result.status,
                "seconds": result.seconds,
                "attempts": result.attempts,
                "compile_cache_hit": result.compile_cache_hit,
                "baseline_cache_hit": result.baseline_cache_hit,
                "spans": result.trace or {},
            }
        )

    def write_summary(self, spans: Dict, metrics: Dict) -> None:
        self._write({"record": "campaign_spans", "spans": spans})
        self._write({"record": "metrics", "metrics": metrics})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def load_trace(path: str) -> Dict:
    """Parse a trace JSONL file into ``{"meta", "tasks", "spans",
    "metrics"}``.  Like the result store's loader it tolerates a
    truncated final line (the expected state after a kill)."""
    meta: Dict = {}
    tasks: List[Dict] = []
    spans: Dict = {}
    metrics: Dict = {}
    skipped = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
                kind = d.get("record")
                if kind == "trace_meta":
                    meta = d
                elif kind == "task_trace":
                    tasks.append(d)
                elif kind == "campaign_spans":
                    spans = d.get("spans", {})
                elif kind == "metrics":
                    metrics = d.get("metrics", {})
            except ValueError:
                skipped += 1
    if skipped:
        meta = dict(meta)
        meta["_skipped_lines"] = skipped
    return {"meta": meta, "tasks": tasks, "spans": spans, "metrics": metrics}


def _stage_seconds(spans: Dict, stage: str) -> float:
    """Seconds attributed to one top-level stage span of a task tree
    (the stage's own path, not double-counting its children)."""
    entry = spans.get(stage)
    if entry is None:
        return 0.0
    return float(entry.get("seconds", 0.0))


def _subspan_seconds(spans: Dict, name: str) -> float:
    """Seconds of a named sub-span wherever it nests (span seconds are
    inclusive, so a sub-span never changes its stage's total — it only
    attributes a slice of it)."""
    return sum(
        float(e.get("seconds", 0.0))
        for path, e in spans.items()
        if path.split("/")[-1] == name
    )


def stage_rows(tasks: Sequence[Dict]) -> List[Dict]:
    """Per compile-key group stage breakdown rows.

    Tasks sharing a compile key are the machine x mesh cells of one
    compiled nest; per group the row reports how much task wall time
    went to the compile stage, the price stage and **executor
    overhead** — the gap between summed task wall time and traced span
    time (dispatch, IPC, retries, uninstrumented glue).  Crashed tasks
    have no span tree (the worker died before reporting); they still
    count toward the group's task count so lost work is visible.
    """
    groups: Dict[str, List[Dict]] = {}
    for t in tasks:
        key = t.get("compile_key") or t.get("workload") or "?"
        groups.setdefault(key, []).append(t)

    rows: List[Dict] = []
    for key in sorted(groups):
        ts = groups[key]
        seconds = sum(float(t.get("seconds", 0.0)) for t in ts)
        compile_s = sum(_stage_seconds(t.get("spans", {}), "compile") for t in ts)
        price_s = sum(_stage_seconds(t.get("spans", {}), "price") for t in ts)
        heur_s = sum(
            _subspan_seconds(t.get("spans", {}), "price.heuristic") for t in ts
        )
        base_s = sum(
            _subspan_seconds(t.get("spans", {}), "price.baseline") for t in ts
        )
        # fused pricing records one exec.segmented span per kernel call
        # with count = phases priced, so this stays a *phase* count; the
        # per-phase baseline path still reports exec.phase
        phase_calls = sum(
            int(e.get("count", 0))
            for t in ts
            for path, e in (t.get("spans") or {}).items()
            if path.endswith("exec.phase") or path.endswith("exec.segmented")
        )
        rows.append(
            {
                "compile_key": key,
                "workload": ts[0].get("workload", "?"),
                "tasks": len(ts),
                "ok": sum(1 for t in ts if t.get("status") == "ok"),
                "traceless": sum(1 for t in ts if not t.get("spans")),
                "compile_seconds": compile_s,
                "price_seconds": price_s,
                "price_heuristic_seconds": heur_s,
                "price_baseline_seconds": base_s,
                "phase_calls": phase_calls,
                "overhead_seconds": max(0.0, seconds - compile_s - price_s),
                "seconds": seconds,
            }
        )
    return rows


def stage_totals(tasks: Sequence[Dict]) -> Dict[str, float]:
    """Whole-campaign stage totals (the numbers ``BENCH_trace.json``
    records and the overhead gate checks against wall time)."""
    rows = stage_rows(tasks)
    return {
        "tasks": sum(r["tasks"] for r in rows),
        "compile_seconds": sum(r["compile_seconds"] for r in rows),
        "price_seconds": sum(r["price_seconds"] for r in rows),
        "price_heuristic_seconds": sum(
            r["price_heuristic_seconds"] for r in rows
        ),
        "price_baseline_seconds": sum(
            r["price_baseline_seconds"] for r in rows
        ),
        "overhead_seconds": sum(r["overhead_seconds"] for r in rows),
        "task_seconds": sum(r["seconds"] for r in rows),
        "phase_calls": sum(r["phase_calls"] for r in rows),
    }


def format_stage_breakdown(tasks: Sequence[Dict]) -> str:
    """The per-compile-key-group stage table."""
    rows = stage_rows(tasks)
    if not rows:
        return "trace: no task records"
    totals = stage_totals(tasks)
    table = [
        [
            r["workload"],
            r["compile_key"][:12],
            r["tasks"],
            r["ok"],
            r["compile_seconds"],
            r["price_seconds"],
            r["price_heuristic_seconds"],
            r["price_baseline_seconds"],
            r["phase_calls"],
            r["overhead_seconds"],
            r["seconds"],
        ]
        for r in sorted(rows, key=lambda r: -r["seconds"])
    ]
    table.append(
        [
            "TOTAL",
            "",
            totals["tasks"],
            sum(r["ok"] for r in rows),
            totals["compile_seconds"],
            totals["price_seconds"],
            totals["price_heuristic_seconds"],
            totals["price_baseline_seconds"],
            totals["phase_calls"],
            totals["overhead_seconds"],
            totals["task_seconds"],
        ]
    )
    return format_table(
        [
            "workload", "compile_key", "tasks", "ok", "compile_s",
            "price_s", "heur_s", "base_s", "phases", "overhead_s",
            "total_s",
        ],
        table,
        title="per-stage time by compile-key group",
    )


def format_span_table(spans: Dict, limit: int = 40) -> str:
    """The campaign-level span aggregate, heaviest paths first."""
    if not spans:
        return "trace: no campaign spans"
    items = sorted(
        spans.items(), key=lambda kv: -float(kv[1].get("seconds", 0.0))
    )[:limit]
    return format_table(
        ["span path", "count", "seconds"],
        [
            [path, int(e.get("count", 0)), float(e.get("seconds", 0.0))]
            for path, e in items
        ],
        title=f"span aggregate (top {min(limit, len(spans))} of {len(spans)})",
    )


def format_trace_report(trace: Dict) -> str:
    """The full ``repro trace report`` rendering of a loaded trace."""
    parts: List[str] = []
    meta = trace.get("meta", {})
    if meta:
        bits = []
        if meta.get("spec_digest"):
            bits.append(f"grid {meta['spec_digest']}")
        if meta.get("executor"):
            bits.append(f"executor {meta['executor']}")
        if meta.get("jobs"):
            bits.append(f"jobs {meta['jobs']}")
        if meta.get("_skipped_lines"):
            bits.append(f"{meta['_skipped_lines']} undecodable line(s) skipped")
        if bits:
            parts.append("trace: " + ", ".join(bits))
    parts.append(format_stage_breakdown(trace.get("tasks", [])))
    parts.append(format_span_table(trace.get("spans", {})))
    metrics = trace.get("metrics", {})
    if metrics:
        flat = [
            [k, v] for k, v in sorted(metrics.items())
            if not isinstance(v, dict)
        ]
        if flat:
            parts.append(format_table(["metric", "value"], flat, title="metrics"))
    return "\n\n".join(parts)
