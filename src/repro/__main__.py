"""Command-line driver with two subcommands.

``map`` (the default when the first argument is a nest file — the
historical CLI) maps one loop-nest source file and reports::

    python -m repro NEST_FILE [--m 2] [--mesh 4x4] [--params N=6,M=6]
                    [--spmd] [--execute]
    python -m repro map NEST_FILE [...]

``campaign`` orchestrates bulk experiments over generated + corpus
workloads (see :mod:`repro.campaign`)::

    python -m repro campaign run --seed 0 --nests 50 --jobs 4 \
                                 --out runs/demo.jsonl
    python -m repro campaign run --resume ...     # or: campaign resume
    python -m repro campaign summarize runs/demo.jsonl

``--shapes`` selects the workload families: ``rect`` (the historical
rectangular generator + corpus, the default), ``tri`` (triangular/
trapezoidal nests — LU, Cholesky, back-substitution and the seeded
triangular generator, through the polyhedral domain layer) or ``both``.
Multi-host campaigns partition one grid by stable task-id prefix and
merge the shard outputs::

    python -m repro campaign run --shard 0/3 --out runs/shard0.jsonl ...
    python -m repro campaign merge --out runs/all.jsonl runs/shard*.jsonl

``--mesh`` accepts 2-D ``PxQ`` and 3-D ``PxQxR`` specs; machines come
from the :mod:`repro.machine` registry (``paragon``/``cm5`` want 2-D
meshes with ``--m 2``, ``t3d`` wants 3-D meshes with ``--m 3``), e.g.::

    python -m repro campaign run --machines paragon,t3d \
        --mesh 4x4,2x2x2 --m 2,3 --out runs/mixed.jsonl

``--executor`` picks the execution backend (``inline``, ``pool`` or
``resilient`` — see :mod:`repro.campaign.executors`); ``--retries`` /
``--backoff`` retry transient failures (worker crash, timeout, OOM)
with capped exponential backoff::

    python -m repro campaign run --executor resilient --retries 2 \
        --timeout 60 --jobs 4 --out runs/hardened.jsonl

``--trace`` records a span/metric JSONL trace next to the results, and
``trace report`` / ``summarize --timings`` render its per-stage time
breakdown (compile vs price vs executor overhead, per compile-key
group)::

    python -m repro campaign run --trace runs/demo_trace.jsonl ...
    python -m repro trace report runs/demo_trace.jsonl
    python -m repro campaign summarize runs/demo.jsonl \
        --timings runs/demo_trace.jsonl

Malformed arguments (bad ``--mesh``, bad ``--params``, a non-positive
``--timeout``, a mesh rank that cannot match ``--m``) produce a
friendly message on stderr and exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple


class CliError(Exception):
    """User-facing argument error: message + exit code 2."""


def _parse_params(text: str) -> Dict[str, int]:
    """Parse ``N=6,M=6`` size bindings."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for item in text.split(","):
        key, sep, val = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise CliError(
                f"bad --params entry {item!r}: expected NAME=INT "
                "(e.g. --params N=6,M=6)"
            )
        try:
            out[key] = int(val)
        except ValueError:
            raise CliError(
                f"bad --params value {val.strip()!r} for {key!r}: "
                "expected an integer"
            ) from None
    return out


def _parse_mesh(text: str) -> Tuple[int, ...]:
    """Parse one ``PxQ`` / ``PxQxR`` mesh spec (any rank >= 2)."""
    parts = text.split("x")
    try:
        if len(parts) < 2:
            raise ValueError
        dims = tuple(int(p) for p in parts)
    except ValueError:
        raise CliError(
            f"bad --mesh {text!r}: expected PxQ or PxQxR with integer "
            "sides (e.g. --mesh 4x4 or --mesh 2x2x2)"
        ) from None
    if any(d <= 0 for d in dims):
        raise CliError(f"bad --mesh {text!r}: sides must be positive")
    return dims


def _parse_int(text: str, flag: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise CliError(f"bad {flag} {text!r}: expected an integer") from None


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard spec (0-based index, positive count)."""
    idx, sep, cnt = text.partition("/")
    try:
        if not sep:
            raise ValueError
        i, n = int(idx), int(cnt)
    except ValueError:
        raise CliError(
            f"bad --shard {text!r}: expected I/N (e.g. --shard 0/3)"
        ) from None
    if n <= 0 or not 0 <= i < n:
        raise CliError(
            f"bad --shard {text!r}: need 0 <= I < N with N positive"
        )
    return i, n


def _add_common_args(ap: argparse.ArgumentParser, campaign: bool = False) -> None:
    """The arguments shared by ``map`` and ``campaign run/resume``.

    ``campaign`` mode documents the comma-separated list forms
    (``--mesh 4x4,8x8``); the parsing helpers are shared either way.
    """
    many = " (comma-separated list allowed)" if campaign else ""
    ap.add_argument(
        "--m", default="2", metavar="M",
        help=f"virtual grid dimension{many} (default: 2)",
    )
    ap.add_argument(
        "--mesh", default="4x4", metavar="PxQ[xR]",
        help=f"physical mesh, 2-D PxQ or 3-D PxQxR{many} (default: 4x4)",
    )
    ap.add_argument(
        "--params", default="", metavar="N=6,M=6",
        help="size bindings for domain enumeration",
    )


# ---------------------------------------------------------------------------
# map — the historical single-nest CLI
# ---------------------------------------------------------------------------


def _map_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro [map]",
        description="Map an affine loop nest (two-step heuristic of "
        "Dion, Randriamaro & Robert, IPPS'96).",
    )
    ap.add_argument("nest_file", help="loop-nest source file")
    _add_common_args(ap)
    ap.add_argument(
        "--outer-sequential",
        type=int,
        default=0,
        metavar="K",
        help="schedule the first K loops sequentially (default: infer "
        "all-parallel)",
    )
    ap.add_argument("--spmd", action="store_true", help="emit SPMD pseudo-code")
    ap.add_argument(
        "--execute", action="store_true", help="price the execution on the mesh"
    )
    return ap


def map_main(argv: List[str]) -> int:
    args = _map_parser().parse_args(argv)
    m = _parse_int(args.m, "--m")
    mesh = _parse_mesh(args.mesh)
    params = _parse_params(args.params)
    if args.execute and len(mesh) != m:
        raise CliError(
            f"--mesh {args.mesh} is {len(mesh)}-D but --m is {m}: the "
            "virtual grid dimension must match the mesh rank (pass "
            f"--m {len(mesh)}, or a {m}-D mesh)"
        )

    from .alignment import two_step_heuristic
    from .ir import outer_sequential_schedules, parse_nest
    from .report import format_mapping_summary

    try:
        with open(args.nest_file) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    nest = parse_nest(source, name=args.nest_file)
    print(nest.describe())
    for s in nest.statements:
        if not s.is_rectangular:
            print(f"  {s.name} iterates a {s.domain.describe()}")
    print()

    schedules = None
    if args.outer_sequential > 0:
        schedules = outer_sequential_schedules(nest, outer=args.outer_sequential)
    result = two_step_heuristic(nest, m=m, schedules=schedules)
    print(result.describe())
    print()
    print(format_mapping_summary(result))

    if args.spmd:
        from .codegen import generate_spmd

        print()
        print(generate_spmd(result))

    if args.execute:
        from .machine import machine_for_mesh
        from .runtime import Folding, MappedProgram, execute

        try:
            machine = machine_for_mesh(mesh).make(mesh)
        except ValueError as exc:
            raise CliError(str(exc)) from None
        folding = Folding(mesh=machine.mesh, extent=4 * max(mesh))
        program = MappedProgram(mapping=result, folding=folding, params=params)
        print()
        print(execute(program, machine).describe())
    return 0


# ---------------------------------------------------------------------------
# campaign — bulk sweeps with checkpoint/resume
# ---------------------------------------------------------------------------


def _campaign_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run/resume/summarize mapping campaigns "
        "(generated + corpus workloads, parallel sweep runner).",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    for cmd in ("run", "resume"):
        p = sub.add_parser(
            cmd,
            help="execute a sweep grid"
            if cmd == "run"
            else "shorthand for: run --resume",
        )
        p.add_argument("--out", required=True, help="JSONL checkpoint/result file")
        p.add_argument("--seed", type=int, default=0, help="generator seed")
        p.add_argument(
            "--nests", type=int, default=20,
            help="number of generated workloads (default: 20)",
        )
        p.add_argument(
            "--jobs", type=int, default=1, help="parallel worker processes"
        )
        _add_common_args(p, campaign=True)
        p.add_argument(
            "--machines", default="paragon,cm5",
            help="machine models to sweep, from the machine registry "
            "(e.g. paragon,cm5,t3d; default: paragon,cm5)",
        )
        p.add_argument(
            "--rank-weights", choices=("on", "off", "both"), default="on",
            help="heuristic knob: access-rank edge weights (default: on)",
        )
        p.add_argument(
            "--no-corpus", action="store_true",
            help="generated workloads only (skip the named corpus)",
        )
        p.add_argument(
            "--shapes", choices=("rect", "tri", "both"), default="rect",
            help="workload shape families: rectangular nests, "
            "triangular/trapezoidal nests, or both (default: rect)",
        )
        p.add_argument(
            "--shard", default=None, metavar="I/N",
            help="run only the I-th of N stable grid partitions "
            "(by task-id prefix; merge shard outputs with "
            "'campaign merge')",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECS",
            help="per-task wall-clock cap (must be positive)",
        )
        p.add_argument(
            "--executor", choices=("inline", "pool", "resilient"),
            default=None,
            help="execution backend (default: pool when --jobs > 1, "
            "else inline; resilient adds per-task crash/hang recovery)",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="retry transient task failures (crash/timeout/oom/fault) "
            "up to N times with exponential backoff (default: 0)",
        )
        p.add_argument(
            "--backoff", type=float, default=0.5, metavar="SECS",
            help="base retry backoff, doubled per retry and capped "
            "(default: 0.5)",
        )
        p.add_argument(
            "--max-tasks", type=int, default=None, metavar="K",
            help="stop after K new results (checkpoint stays resumable)",
        )
        p.add_argument(
            "--trace", default=None, metavar="OUT.jsonl",
            help="record a span/metric trace of this run to a JSONL "
            "file (render it with 'python -m repro trace report'); the "
            "result store stays byte-identical to an untraced run",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="continue from the checkpoint in --out",
        )
        p.add_argument(
            "--retry-failed", action="store_true",
            help="on resume, re-run tasks recorded as error/timeout",
        )
        p.add_argument(
            "--force", action="store_true",
            help="overwrite an existing --out without --resume",
        )

    s = sub.add_parser("summarize", help="aggregate a result file")
    s.add_argument("results", help="JSONL file written by campaign run")
    s.add_argument(
        "--timings", default=None, metavar="TRACE.jsonl",
        help="also render the per-stage time breakdown from a trace "
        "file recorded with 'campaign run --trace'",
    )

    g = sub.add_parser(
        "merge",
        help="concatenate + dedupe shard JSONL files into one store",
    )
    g.add_argument("--out", required=True, help="merged JSONL output file")
    g.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --out",
    )
    g.add_argument(
        "--allow-mixed", action="store_true",
        help="merge shards even when their grid digests disagree "
        "(normally refused: mixed-grid stores are almost always an "
        "accident)",
    )
    g.add_argument("shards", nargs="+", help="shard JSONL files to merge")
    return ap


def campaign_main(argv: List[str]) -> int:
    args = _campaign_parser().parse_args(argv)

    from .campaign import (
        CampaignConfig,
        CampaignSpecMismatch,
        RunStore,
        default_spec,
        grid_digest,
        merge_stores,
        run_campaign,
        shard_tasks,
        summarize_results,
    )
    from .report import format_campaign_summary, format_mesh

    if args.cmd == "merge":
        import os

        if os.path.exists(args.out) and not args.force:
            raise CliError(
                f"{args.out} already exists: pass --force to overwrite"
            )
        try:
            summary = merge_stores(
                args.shards, args.out, force=args.allow_mixed
            )
        except ValueError as exc:
            raise CliError(str(exc)) from None
        if summary["skipped_lines"]:
            print(
                f"note: skipped {summary['skipped_lines']} undecodable "
                "line(s) across shards (truncated checkpoint?)",
                file=sys.stderr,
            )
        print(
            f"merged {summary['shards']} shard(s) into {args.out}: "
            f"{summary['results']} result(s), "
            f"{summary['duplicates']} duplicate(s) dropped"
        )
        _, results = RunStore(args.out).load()
        print()
        print(format_campaign_summary(summarize_results(results.values())))
        return 0

    if args.cmd == "summarize":
        store = RunStore(args.results)
        meta, results = store.load()
        if not meta and not results:
            raise CliError(f"no campaign records in {args.results!r}")
        if meta.get("_skipped_lines"):
            print(
                f"note: skipped {meta['_skipped_lines']} undecodable "
                "line(s) (truncated checkpoint?)",
                file=sys.stderr,
            )
        print(format_campaign_summary(summarize_results(results.values())))
        if args.timings:
            import os

            if not os.path.exists(args.timings):
                raise CliError(f"no trace file at {args.timings!r}")
            from .obs import format_trace_report, load_trace

            print()
            print(format_trace_report(load_trace(args.timings)))
        return 0

    resume = args.resume or args.cmd == "resume"
    meshes = tuple(_parse_mesh(part) for part in args.mesh.split(","))
    ms = tuple(_parse_int(part, "--m") for part in args.m.split(","))
    machines = tuple(s.strip() for s in args.machines.split(",") if s.strip())
    rank_weights = {
        "on": (True,), "off": (False,), "both": (True, False),
    }[args.rank_weights]
    params = _parse_params(args.params) or None
    shapes = {
        "rect": ("rect",), "tri": ("tri",), "both": ("rect", "tri"),
    }[args.shapes]
    shard = _parse_shard(args.shard) if args.shard else None
    if args.timeout is not None and args.timeout <= 0:
        raise CliError(
            f"--timeout must be positive, got {args.timeout} "
            "(omit it for no per-task cap)"
        )
    if args.retries < 0:
        raise CliError(f"--retries must be >= 0, got {args.retries}")

    import os

    if os.path.exists(args.out) and not resume and not args.force:
        raise CliError(
            f"{args.out} already exists: pass --resume to continue it "
            "or --force to overwrite"
        )

    try:
        spec = default_spec(
            seed=args.seed,
            nests=args.nests,
            include_corpus=not args.no_corpus,
            machines=machines,
            meshes=meshes,
            ms=ms,
            rank_weights=rank_weights,
            params=params,
            shapes=shapes,
        )
        tasks = spec.expand()
    except (ValueError, RuntimeError) as exc:
        # ValueError: unknown machine / repeated grid cell; RuntimeError:
        # generator stalled (e.g. bindings that reject every candidate)
        raise CliError(str(exc)) from None
    # the digest names the FULL grid (shards of one campaign share it,
    # which is what lets `campaign merge` verify they belong together)
    digest = grid_digest(tasks)
    meta = {
        "spec_digest": digest,
        "seed": args.seed,
        "nests": args.nests,
        "machines": list(machines),
        "meshes": [format_mesh(mm) for mm in meshes],
        "m": list(ms),
        "rank_weights": list(rank_weights),
        "corpus": not args.no_corpus,
        "shapes": list(shapes),
    }
    total = len(tasks)
    if shard is not None:
        tasks = shard_tasks(tasks, *shard)
        meta["shard"] = f"{shard[0]}/{shard[1]}"
        print(
            f"campaign grid: {total} task(s), digest {digest}; "
            f"shard {shard[0]}/{shard[1]} -> {len(tasks)} task(s)"
        )
    else:
        print(f"campaign grid: {len(tasks)} task(s), digest {digest}")

    def progress(result):
        if result.status != "ok":
            print(
                f"  [{result.status}] {result.workload} on {result.machine} "
                f"{format_mesh(result.mesh)}: {result.error}",
                file=sys.stderr,
            )

    try:
        outcome = run_campaign(
            tasks,
            args.out,
            CampaignConfig(
                jobs=args.jobs,
                timeout=args.timeout,
                max_tasks=args.max_tasks,
                retry_failures=args.retry_failed,
                executor=args.executor,
                retries=args.retries,
                backoff=args.backoff,
                trace=args.trace,
            ),
            resume=resume,
            meta=meta,
            progress=progress,
        )
    except CampaignSpecMismatch as exc:
        raise CliError(str(exc)) from None
    print(outcome.describe())

    _, results = RunStore(args.out).load()
    print()
    print(format_campaign_summary(summarize_results(results.values())))
    return 0


# ---------------------------------------------------------------------------
# trace — render span/metric traces recorded by `campaign run --trace`
# ---------------------------------------------------------------------------


def _trace_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Inspect span/metric traces recorded by "
        "'campaign run --trace OUT.jsonl'.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    r = sub.add_parser(
        "report",
        help="per-stage time breakdown (compile vs price vs executor "
        "overhead, per compile-key group) + span/metric tables",
    )
    r.add_argument("trace", help="JSONL trace file")
    return ap


def trace_main(argv: List[str]) -> int:
    args = _trace_parser().parse_args(argv)
    import os

    if not os.path.exists(args.trace):
        raise CliError(f"no trace file at {args.trace!r}")

    from .obs import format_trace_report, load_trace

    trace = load_trace(args.trace)
    if not (trace["tasks"] or trace["spans"] or trace["meta"]):
        raise CliError(f"no trace records in {args.trace!r}")
    print(format_trace_report(trace))
    return 0


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "campaign":
            return campaign_main(argv[1:])
        if argv and argv[0] == "trace":
            return trace_main(argv[1:])
        if argv and argv[0] == "map":
            argv = argv[1:]
        return map_main(argv)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
