"""Command-line driver: map a loop-nest source file and report.

Usage::

    python -m repro NEST_FILE [--m 2] [--mesh 4x4] [--params N=6,M=6]
                    [--spmd] [--execute]

Reads the nest notation of :mod:`repro.ir.parser`, runs the two-step
heuristic, prints the mapping summary, optionally emits the SPMD
pseudo-program and prices an execution on a mesh model.
"""

from __future__ import annotations

import argparse
import sys


def _parse_params(text: str):
    out = {}
    if not text:
        return out
    for item in text.split(","):
        key, _, val = item.partition("=")
        out[key.strip()] = int(val)
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="Map an affine loop nest (two-step heuristic of "
        "Dion, Randriamaro & Robert, IPPS'96).",
    )
    ap.add_argument("nest_file", help="loop-nest source file")
    ap.add_argument("--m", type=int, default=2, help="virtual grid dimension")
    ap.add_argument("--mesh", default="4x4", help="physical mesh PxQ")
    ap.add_argument(
        "--params", default="", help="size bindings, e.g. N=6,M=6"
    )
    ap.add_argument(
        "--outer-sequential",
        type=int,
        default=0,
        metavar="K",
        help="schedule the first K loops sequentially (default: infer "
        "all-parallel)",
    )
    ap.add_argument("--spmd", action="store_true", help="emit SPMD pseudo-code")
    ap.add_argument(
        "--execute", action="store_true", help="price the execution on the mesh"
    )
    args = ap.parse_args(argv)

    from .alignment import two_step_heuristic
    from .ir import outer_sequential_schedules, parse_nest
    from .report import format_mapping_summary

    try:
        with open(args.nest_file) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    nest = parse_nest(source, name=args.nest_file)
    print(nest.describe())
    print()

    schedules = None
    if args.outer_sequential > 0:
        schedules = outer_sequential_schedules(nest, outer=args.outer_sequential)
    result = two_step_heuristic(nest, m=args.m, schedules=schedules)
    print(result.describe())
    print()
    print(format_mapping_summary(result))

    if args.spmd:
        from .codegen import generate_spmd

        print()
        print(generate_spmd(result))

    if args.execute:
        from .machine import ParagonModel
        from .runtime import Folding, MappedProgram, execute

        p, _, q = args.mesh.partition("x")
        machine = ParagonModel(int(p), int(q))
        params = _parse_params(args.params)
        folding = Folding(mesh=machine.mesh, extent=4 * max(int(p), int(q)))
        program = MappedProgram(mapping=result, folding=folding, params=params)
        print()
        print(execute(program, machine).describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
