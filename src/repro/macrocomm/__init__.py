"""Macro-communication detection and axis alignment (Section 4).

Detectors for broadcast / scatter / gather / reduction patterns, the
total / partial / hidden classification, the axis-parallelism test on
the direction matrix ``D``, the Hermite-based unimodular rotation that
makes a partial pattern axis-parallel, and the message-vectorization
condition of Section 4.5.
"""

from .detect import (
    Extent,
    MacroComm,
    MacroKind,
    axis_alignment_rotation,
    axis_parallel,
    can_vectorize,
    detect_broadcast,
    detect_gather,
    detect_reduction,
    detect_scatter,
)

__all__ = [
    "MacroComm",
    "MacroKind",
    "Extent",
    "detect_broadcast",
    "detect_scatter",
    "detect_gather",
    "detect_reduction",
    "axis_parallel",
    "axis_alignment_rotation",
    "can_vectorize",
]
