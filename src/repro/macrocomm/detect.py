"""Macro-communication detection (Section 4).

Given a residual communication — statement ``S`` with schedule
``theta_S`` and allocation ``M_S``, array ``a`` with allocation ``M_a``
accessed through ``F_a`` — the paper characterizes each macro pattern by
a kernel condition on the iteration-space displacement ``I' - I``:

==========  =============================================  =================
pattern      displacement set                                triggered by
==========  =============================================  =================
broadcast    ``ker θ ∩ ker F_a  \\  ker M_S``                read
scatter      ``ker θ ∩ ker(M_a F_a) \\ (ker M_S ∩ ker F_a)``  read
gather       ``ker θ ∩ ker(M_a F_a) \\ (ker M_S ∩ ker F_a)``  write
reduction    ``ker θ ∩ ker M_S  \\  ker(M_a F_a)``            write (accum.)
==========  =============================================  =================

The *processor-space* directions are the images ``M_S v_i`` (broadcast /
scatter / gather) of the displacement directions.  With ``p`` the
number of independent displacement directions visible on the grid:
``p = m`` → total, ``1 <= p < m`` → partial, ``p = 0`` → hidden (plain
point-to-point).  A partial pattern is *efficient* only when performed
parallel to grid axes; :func:`axis_parallel` tests this and
:func:`axis_alignment_rotation` produces the unimodular fix via the
right Hermite form (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..linalg import (
    FracMat,
    IntMat,
    kernel_difference_directions,
    rank,
    right_hermite_narrow,
    unimodular_inverse,
)


class MacroKind(Enum):
    BROADCAST = "broadcast"
    SCATTER = "scatter"
    GATHER = "gather"
    REDUCTION = "reduction"


class Extent(Enum):
    TOTAL = "total"
    PARTIAL = "partial"
    HIDDEN = "hidden"


@dataclass
class MacroComm:
    """A detected macro-communication pattern."""

    kind: MacroKind
    #: displacement directions in iteration space (columns)
    iteration_directions: List[IntMat]
    #: their images on the virtual grid (columns, m x 1); empty for
    #: reductions (whose direction lives at the *source* allocation)
    grid_directions: List[IntMat]
    extent: Extent

    @property
    def p(self) -> int:
        return len(self.iteration_directions)

    def direction_matrix(self) -> Optional[IntMat]:
        """The ``m x p`` matrix ``D = [M_S v_1 ... M_S v_p]`` (or None
        when there is no grid direction)."""
        cols = [d.column_tuple(0) for d in self.grid_directions]
        if not cols:
            return None
        return IntMat(list(zip(*cols)))

    @property
    def axis_parallel(self) -> bool:
        d = self.direction_matrix()
        if d is None:
            return True
        return axis_parallel(d)


def _classify_extent(n_dirs: int, m: int) -> Extent:
    if n_dirs == 0:
        return Extent.HIDDEN
    if n_dirs >= m:
        return Extent.TOTAL
    return Extent.PARTIAL


def _grid_images(ms: IntMat, dirs: List[IntMat]) -> List[IntMat]:
    """Independent non-zero images ``M_S v`` of the displacement dirs."""
    images: List[IntMat] = []
    rows: List[List[int]] = []
    for v in dirs:
        img = ms @ v
        if img.is_zero():
            continue
        trial = rows + [list(img.column_tuple(0))]
        if FracMat(trial).rank() == len(trial):
            rows.append(list(img.column_tuple(0)))
            images.append(img)
    return images


def detect_broadcast(
    theta: IntMat, f_a: IntMat, m_s: IntMat
) -> Optional[MacroComm]:
    """Broadcast test for a read access (Section 4.1).

    Returns the pattern (possibly hidden) or ``None`` when the kernel
    intersection is trivial (no two instances share the datum at the
    same time step)."""
    dirs = kernel_difference_directions([theta, f_a], m_s)
    inter_dim = _inter_dim([theta, f_a])
    if inter_dim == 0:
        return None
    grid = _grid_images(m_s, dirs)
    m = m_s.nrows
    return MacroComm(
        kind=MacroKind.BROADCAST,
        iteration_directions=dirs,
        grid_directions=grid,
        extent=_classify_extent(len(grid), m),
    )


def detect_scatter(
    theta: IntMat, f_a: IntMat, m_a: IntMat, m_s: IntMat
) -> Optional[MacroComm]:
    """Scatter test for a read access (Section 4.2): several *distinct*
    data items leave one processor for several processors."""
    ma_fa = m_a @ f_a
    outside = m_s.vstack(f_a)  # ker M_S ∩ ker F_a = ker [M_S ; F_a]
    if _inter_dim([theta, ma_fa]) == 0:
        return None
    dirs = kernel_difference_directions([theta, ma_fa], outside)
    # a scatter direction must move both the datum and the destination
    dirs = [v for v in dirs if not (f_a @ v).is_zero() and not (m_s @ v).is_zero()]
    grid = _grid_images(m_s, dirs)
    m = m_s.nrows
    return MacroComm(
        kind=MacroKind.SCATTER,
        iteration_directions=dirs,
        grid_directions=grid,
        extent=_classify_extent(len(grid), m),
    )


def detect_gather(
    theta: IntMat, f_a: IntMat, m_a: IntMat, m_s: IntMat
) -> Optional[MacroComm]:
    """Gather test for a write access (Section 4.3) — the inverse of a
    scatter: distinct data from distinct processors reach one
    processor.  Directions move the *computing* processor while fixing
    the owner of the written region."""
    ma_fa = m_a @ f_a
    outside = m_s.vstack(f_a)
    if _inter_dim([theta, ma_fa]) == 0:
        return None
    dirs = kernel_difference_directions([theta, ma_fa], outside)
    dirs = [v for v in dirs if not (f_a @ v).is_zero() and not (m_s @ v).is_zero()]
    grid = _grid_images(m_s, dirs)
    m = m_s.nrows
    return MacroComm(
        kind=MacroKind.GATHER,
        iteration_directions=dirs,
        grid_directions=grid,
        extent=_classify_extent(len(grid), m),
    )


def detect_reduction(
    theta: IntMat, f_b: IntMat, m_b: IntMat, m_s: IntMat
) -> Optional[MacroComm]:
    """Reduction test (Section 4.4): at one time step a single computing
    processor consumes values owned by several processors; the
    displacement set is ``ker θ ∩ ker M_S \\ ker(M_b F_b)``."""
    mb_fb = m_b @ f_b
    if _inter_dim([theta, m_s]) == 0:
        return None
    dirs = kernel_difference_directions([theta, m_s], mb_fb)
    # reduction fan-in directions live at the data allocation
    grid = _grid_images(mb_fb, dirs)
    m = m_s.nrows
    return MacroComm(
        kind=MacroKind.REDUCTION,
        iteration_directions=dirs,
        grid_directions=grid,
        extent=_classify_extent(len(grid), m),
    )


def _inter_dim(mats: List[IntMat]) -> int:
    from ..linalg import kernel_intersection_basis

    return len(kernel_intersection_basis(mats))


# ---------------------------------------------------------------------------
# axis parallelism (Section 4.1, partial broadcast conditions)
# ---------------------------------------------------------------------------

def axis_parallel(d_mat: IntMat) -> bool:
    """True iff the direction matrix ``D`` spans a coordinate subspace:
    up to a row permutation ``D = [D1 ; 0]`` with ``D1`` square of full
    rank — equivalently the non-zero rows of ``D`` number exactly
    ``rank(D)``."""
    nonzero_rows = sum(1 for row in d_mat.rows() if any(x != 0 for x in row))
    return nonzero_rows == rank(d_mat)


def axis_alignment_rotation(d_mat: IntMat) -> IntMat:
    """The unimodular ``V`` making ``V D`` axis-parallel.

    Decompose ``D = Q [H ; 0]`` (right Hermite form); then
    ``V = Q^{-1}`` sends the broadcast directions onto the first ``p``
    grid axes.  Left-multiplying every allocation matrix of the
    connected component by ``V`` implements the rotation.
    """
    q, _h = right_hermite_narrow(d_mat)
    return unimodular_inverse(q)


# ---------------------------------------------------------------------------
# message vectorization (Section 4.5)
# ---------------------------------------------------------------------------

def can_vectorize(m_s: IntMat, m_a: IntMat, f_a: IntMat) -> bool:
    """Message-vectorization condition ``ker M_S ⊆ ker(M_a F_a)``: the
    source processor of the data read by a fixed virtual processor does
    not depend on the time step, so per-step messages can be hoisted
    and coalesced into one packet."""
    ma_fa = m_a @ f_a
    stacked = m_s.vstack(ma_fa)
    return rank(stacked) == rank(m_s)
