"""Communication decomposition (Section 5).

* :mod:`~repro.decomp.elementary` — ``L``/``U`` and unirow factors;
* :mod:`~repro.decomp.twobytwo` — analytic <=4-factor decomposition of
  2x2 determinant-1 data-flow matrices;
* :mod:`~repro.decomp.similarity` — unimodular-similarity reduction to
  two factors (sufficient condition + bounded search);
* :mod:`~repro.decomp.general` — unirow decomposition of arbitrary
  non-singular matrices;
* :mod:`~repro.decomp.search` — exhaustive shortest-word oracle.

The top-level :func:`decompose_dataflow` picks the best strategy for a
residual communication's data-flow matrix.
"""

from typing import List, Optional, Tuple

from ..linalg import IntMat
from .elementary import (
    L,
    U,
    axis_of_elementary,
    elementary,
    is_elementary,
    is_unirow,
    kind_2x2,
    verify_factors,
)
from .general import triangular_unirow_factors, unirow_decomposition
from .quadratic import (
    forms_equivalent,
    lu_trace_forms,
    matrix_to_form,
    reduction_cycle,
    similar_to_lu_decision,
)
from .search import enumerate_det1, shortest_decomposition
from .similarity import (
    conjugate,
    similar_to_two_factors_search,
    similar_to_two_factors_sufficient,
    two_factor_traces,
)
from .twobytwo import (
    decompose_2x2,
    decompose_four,
    decompose_one,
    decompose_three,
    decompose_two,
)

__all__ = [
    "L",
    "U",
    "elementary",
    "is_elementary",
    "is_unirow",
    "axis_of_elementary",
    "kind_2x2",
    "verify_factors",
    "decompose_2x2",
    "decompose_one",
    "decompose_two",
    "decompose_three",
    "decompose_four",
    "similar_to_two_factors_sufficient",
    "similar_to_two_factors_search",
    "conjugate",
    "two_factor_traces",
    "unirow_decomposition",
    "triangular_unirow_factors",
    "shortest_decomposition",
    "enumerate_det1",
    "similar_to_lu_decision",
    "matrix_to_form",
    "forms_equivalent",
    "reduction_cycle",
    "lu_trace_forms",
    "decompose_dataflow",
    "DecompositionPlan",
]


class DecompositionPlan:
    """Result of :func:`decompose_dataflow`.

    Attributes
    ----------
    factors:
        Unirow factors whose ordered product equals the (possibly
        conjugated) data-flow matrix.
    conjugator:
        Unimodular ``M`` applied to the component's allocations (so the
        decomposed matrix is ``M T M^{-1}``), or ``None`` when ``T`` was
        decomposed directly.
    strategy:
        Human-readable tag ("direct", "similarity", "unirow").
    """

    def __init__(self, factors: List[IntMat], conjugator: Optional[IntMat], strategy: str):
        self.factors = factors
        self.conjugator = conjugator
        self.strategy = strategy

    @property
    def num_phases(self) -> int:
        return len(self.factors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecompositionPlan({self.strategy}, {self.num_phases} phases, "
            f"conjugated={self.conjugator is not None})"
        )


def decompose_dataflow(
    t: IntMat, allow_conjugation: bool = True, similarity_bound: int = 2
) -> DecompositionPlan:
    """Decompose a data-flow matrix into axis-parallel phases.

    Strategy order (2x2, det 1): direct <=2 factors; similarity to a
    2-factor product (when allowed); direct <=4 factors; exhaustive
    short search; unirow fallback.  Arbitrary square matrices go
    straight to the unirow decomposition.
    """
    if t.shape == (2, 2) and t.det() == 1:
        two = decompose_one(t)
        if two is None:
            two = decompose_two(t)
        if two is not None:
            return DecompositionPlan(two, None, "direct")
        if allow_conjugation:
            sim = similar_to_two_factors_sufficient(t)
            if sim is None:
                sim = similar_to_two_factors_search(t, bound=similarity_bound)
            if sim is not None:
                m, factors = sim
                return DecompositionPlan(factors, m, "similarity")
        direct = decompose_2x2(t)
        if direct is not None:
            return DecompositionPlan(direct, None, "direct")
        found = shortest_decomposition(t)
        if found is not None:
            return DecompositionPlan(found, None, "search")
    return DecompositionPlan(unirow_decomposition(t), None, "unirow")
