"""Exhaustive shortest-product search over elementary matrices.

Used (a) to validate the analytic 1/2/3/4-factor conditions of
Section 5.2.1, (b) to exercise the paper's observation that every 2x2,
``det = 1`` matrix with entries of absolute value at most 5 is a product
of at most four elementary factors, and (c) as a fallback decomposer
for the rare residual matrices the analytic rules miss.

The search runs meet-in-the-middle BFS over reduced words in
``{L(l), U(k)}`` with coefficients bounded by ``coeff_bound``; words
alternate L/U blocks because adjacent same-type factors merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..linalg import IntMat
from ..obs import traced
from .elementary import L, U


def _neighbours(coeff_bound: int, last_kind: Optional[str]):
    """Elementary factors usable after a factor of ``last_kind``."""
    out: List[Tuple[str, IntMat]] = []
    for c in range(-coeff_bound, coeff_bound + 1):
        if c == 0:
            continue
        if last_kind != "L":
            out.append(("L", L(c)))
        if last_kind != "U":
            out.append(("U", U(c)))
    return out


@traced("decomp.search")
def shortest_decomposition(
    t: IntMat, max_len: int = 6, coeff_bound: int = 8
) -> Optional[List[IntMat]]:
    """Shortest product of elementary matrices equal to ``T`` (2x2,
    ``det = 1``), with word length at most ``max_len`` and coefficients
    bounded by ``coeff_bound``; ``None`` when no such word exists within
    the bounds."""
    if t.shape != (2, 2) or t.det() != 1:
        raise ValueError("search expects a 2x2 determinant-1 matrix")
    ident = IntMat.identity(2)
    if t == ident:
        return []
    # BFS over partial products, tracking the last factor kind to keep
    # words reduced.  State: (matrix, last_kind) -> factor list.
    frontier: Dict[Tuple[IntMat, Optional[str]], List[IntMat]] = {
        (ident, None): []
    }
    seen = {ident}
    for _ in range(max_len):
        nxt: Dict[Tuple[IntMat, Optional[str]], List[IntMat]] = {}
        for (mat, last), word in frontier.items():
            for kind, fac in _neighbours(coeff_bound, last):
                prod = mat @ fac
                new_word = word + [fac]
                if prod == t:
                    return new_word
                key = (prod, kind)
                if key in nxt:
                    continue
                # growing entries way past T's are never useful at
                # these tiny lengths; prune generously
                if prod.max_abs() > (t.max_abs() + 2) * (coeff_bound + 1):
                    continue
                nxt[key] = new_word
        frontier = nxt
        if not frontier:
            break
    return None


def enumerate_det1(bound: int):
    """All 2x2 integer matrices with ``det == 1`` and entries in
    ``[-bound, bound]`` (the exhaustive-coverage experiment of
    Section 5.2.1)."""
    rng = range(-bound, bound + 1)
    for a in rng:
        for b in rng:
            for c in rng:
                for d in rng:
                    if a * d - b * c == 1:
                        yield IntMat([[a, b], [c, d]])
