"""Unimodular-similarity reduction (Section 5.2.2).

Allocation matrices of one connected component are fixed only up to a
common unimodular left factor ``M``; replacing them rotates the
data-flow matrix ``T`` into ``M T M^{-1}``.  Instead of decomposing
``T`` itself we may therefore look for a *similar* matrix that is a
product of just two elementary factors (one horizontal plus one
vertical communication).

The paper shows via Latimer–MacDuffee that this is **not always
possible** — similarity classes correspond to ideal classes of
``Z[X]/(X^2 - tr(T) X + 1)`` and products ``L·U`` reach only a bounded
number of classes per trace — and gives a sufficient condition that
matches the 3-factor divisibility test:

    if ``c | a - 1`` then with ``β = (a - 1)/c`` and the unimodular
    basis change ``M = [[1, -β], [0, 1]]^{-1}``-style conjugation,
    ``M T M^{-1}`` has top-left entry 1 and is therefore an ``L·U``
    product.

We implement the analytic sufficient condition plus a bounded
exhaustive search over unimodular conjugators (for experiments and the
negative examples).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..linalg import IntMat, enumerate_unimodular_2x2, unimodular_inverse
from .twobytwo import decompose_two


def similar_to_two_factors_sufficient(
    t: IntMat,
) -> Optional[Tuple[IntMat, List[IntMat]]]:
    """Apply the paper's sufficient condition.

    Returns ``(M, factors)`` such that ``M T M^{-1} == product(factors)``
    with exactly (at most) two elementary factors, or ``None`` when the
    divisibility condition fails.

    Construction: if ``c | a - 1`` take the new basis ``(e1, w)`` with
    ``w = (β, 1)``, ``β = (a - 1) / c``: then ``T e1 = e1 + c w``, so in
    that basis the first column of ``T`` is ``(1, c)^T`` — an ``L·U``
    product.  Symmetrically ``b | d - 1`` works on the transpose side.
    """
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if c != 0 and (a - 1) % c == 0:
        beta = (a - 1) // c
        basis = IntMat([[1, beta], [0, 1]])  # columns e1, w
        m = unimodular_inverse(basis)
        sim = m @ t @ basis
        factors = decompose_two(sim)
        if factors is not None:
            return m, factors
    if b != 0 and (d - 1) % b == 0:
        beta = (d - 1) // b
        basis = IntMat([[1, 0], [beta, 1]])  # columns w', e2
        m = unimodular_inverse(basis)
        sim = m @ t @ basis
        factors = decompose_two(sim)
        if factors is not None:
            return m, factors
    return None


def similar_to_two_factors_search(
    t: IntMat, bound: int = 3
) -> Optional[Tuple[IntMat, List[IntMat]]]:
    """Bounded exhaustive search for a unimodular ``M`` (entries in
    ``[-bound, bound]``) with ``M T M^{-1}`` a two-factor product.

    A ``None`` result is *evidence*, not proof, of impossibility — the
    paper's genus-theoretic obstruction shows genuine negative instances
    exist; see ``tests/decomp`` for a certified one via invariant
    arguments.
    """
    for m in enumerate_unimodular_2x2(bound):
        mi = unimodular_inverse(m)
        sim = m @ t @ mi
        factors = decompose_two(sim)
        if factors is not None:
            return m, factors
    return None


def conjugate(t: IntMat, m: IntMat) -> IntMat:
    """``M T M^{-1}`` for unimodular ``M``."""
    return m @ t @ unimodular_inverse(m)


def two_factor_traces(max_lk: int) -> List[int]:
    """Traces reachable by two-factor products ``L(l) U(k)``:
    ``tr = 2 + l k`` — used by the similarity-class counting argument
    (per trace, only the divisor pairs of ``tr - 2`` yield ``L·U``
    class representatives)."""
    traces = set()
    for l in range(-max_lk, max_lk + 1):
        for k in range(-max_lk, max_lk + 1):
            traces.add(2 + l * k)
    return sorted(traces)
