"""Exact integer-similarity decision via binary quadratic forms
(the Latimer–MacDuffee machinery cited in Section 5.2.2).

The paper argues that an integer matrix ``T`` with ``det T = 1`` and
irreducible characteristic polynomial ``P(X) = X^2 - tr X + 1`` is
similar over Z to a two-factor product ``L·U`` only for a bounded
number of similarity classes per trace, while the number of classes is
the (possibly larger) form class number of discriminant
``D = tr^2 - 4`` — so negative instances exist.

This module makes that argument *executable*:

* a matrix ``T = [[a, b], [c, d]]`` (c != 0) corresponds to the binary
  quadratic form ``(c, d - a, -b)`` of discriminant ``tr^2 - 4``
  (the form whose root is the fixed point of the Möbius action of
  ``T``); GL2(Z)-similar matrices give equivalent forms;
* for *indefinite* forms (``D > 0``, non-square — the hyperbolic case
  ``|tr| > 2``) equivalence is decidable by reduction cycles: two forms
  are equivalent iff their reduction cycles coincide;
* :func:`similar_to_lu_decision` enumerates the forms of the two-factor
  products with the same trace and checks cycle membership.

This upgrades the bounded conjugation search of
:mod:`repro.decomp.similarity` to an exact yes/no for hyperbolic
matrices.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

from ..linalg import IntMat

Form = Tuple[int, int, int]  # (A, B, C) ~ A x^2 + B x y + C y^2


def discriminant(form: Form) -> int:
    a, b, c = form
    return b * b - 4 * a * c


def matrix_to_form(t: IntMat) -> Optional[Form]:
    """The fixed-point form of ``T`` (primitive, orientation-normalised).

    For ``T = [[a, b], [c, d]]`` acting as a Möbius map, the fixed
    points satisfy ``c x^2 + (d - a) x - b = 0``; the associated form
    ``(c, d - a, -b)`` has discriminant ``tr^2 - 4 det = tr^2 - 4``.
    Conjugating ``T`` by ``M`` in GL2(Z) transforms the form by the
    (contragredient) action of ``M``, so similarity classes map to form
    classes.  Returns ``None`` for ``c = 0`` (form degenerates; those
    matrices are triangular and handled directly).
    """
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if c == 0:
        return None
    g = math.gcd(math.gcd(abs(c), abs(d - a)), abs(b))
    g = g or 1
    form = (c // g, (d - a) // g, -b // g)
    if form[0] < 0:
        form = (-form[0], -form[1], -form[2])
    return form


def _is_reduced_indefinite(form: Form) -> bool:
    """Gauss reduction criterion for indefinite forms: ``(A, B, C)``
    with ``D > 0`` is reduced iff ``0 < B < sqrt(D)`` and
    ``sqrt(D) - B < 2|A| < sqrt(D) + B``."""
    a, b, c = form
    d = discriminant(form)
    if d <= 0:
        raise ValueError("indefinite reduction needs positive discriminant")
    sq = math.isqrt(d)
    if sq * sq == d:
        raise ValueError("square discriminant: form is not primitive-irrational")
    root = math.sqrt(d)
    return 0 < b < root and (root - b) < 2 * abs(a) < (root + b)


def _rho(form: Form) -> Form:
    """One reduction step: ``rho(A, B, C) = (C, B', C')`` with
    ``B' = -B + 2 C delta`` chosen so the result approaches / stays in
    the reduced cycle (standard indefinite Gauss reduction)."""
    a, b, c = form
    d = discriminant(form)
    root = math.sqrt(d)
    if c == 0:
        raise ValueError("degenerate form")
    # choose delta = round((b + root) / (2 c)) toward the cycle
    if c > 0:
        delta = math.floor((b + root) / (2 * c))
    else:
        delta = math.ceil((b + root) / (2 * c))
    b2 = -b + 2 * c * delta
    c2 = (b2 * b2 - d) // (4 * c)
    return (c, b2, c2)


def reduction_cycle(form: Form, max_steps: int = 200) -> List[Form]:
    """The cycle of reduced forms equivalent to ``form`` (indefinite,
    non-square discriminant).  Reduction reaches the cycle in finitely
    many steps; we iterate rho until a form repeats."""
    cur = form
    seen: List[Form] = []
    for _ in range(max_steps):
        if _is_reduced_indefinite(cur):
            if cur in seen:
                start = seen.index(cur)
                return seen[start:]
            seen.append(cur)
        cur = _rho(cur)
    raise RuntimeError("reduction cycle did not close (increase max_steps?)")


def forms_equivalent(f1: Form, f2: Form) -> bool:
    """GL2(Z)-class equivalence of two indefinite forms via cycle
    comparison.

    A matrix class determines its fixed-point form only up to sign and
    orientation, so we compare the cycle of ``f1`` against the cycles
    of ``f2``, its opposite ``(A, -B, C)`` (improper equivalence) and
    the negatives of both."""
    if discriminant(f1) != discriminant(f2):
        return False
    cyc1 = set(reduction_cycle(f1))
    a, b, c = f2
    for cand in ((a, b, c), (a, -b, c), (-a, -b, -c), (-a, b, -c)):
        if cyc1 & set(reduction_cycle(cand)):
            return True
    return False


def lu_trace_forms(trace: int) -> List[Form]:
    """Fixed-point forms of all two-factor products with the given
    trace: ``L(l) U(k)`` has trace ``2 + l k``, so enumerate the divisor
    pairs of ``trace - 2`` (both orders and signs)."""
    target = trace - 2
    out: List[Form] = []
    if target == 0:
        return out  # triangular products: degenerate forms
    for l in range(-abs(target), abs(target) + 1):
        if l == 0 or target % l != 0:
            continue
        k = target // l
        # L(l) U(k) = [[1, k], [l, 1 + l k]]
        t = IntMat([[1, k], [l, 1 + l * k]])
        f = matrix_to_form(t)
        if f is not None:
            out.append(f)
        # U(k) L(l) = [[1 + k l, k], [l, 1]]
        t2 = IntMat([[1 + k * l, k], [l, 1]])
        f2 = matrix_to_form(t2)
        if f2 is not None:
            out.append(f2)
    return out


def similar_to_lu_decision(t: IntMat) -> Optional[bool]:
    """Exact decision: is ``T`` (2x2, det 1) GL2(Z)-similar to a product
    of two elementary matrices?

    Returns ``True``/``False`` for hyperbolic ``T`` (``|tr| > 2`` with
    non-square ``tr^2 - 4``); ``None`` when the form machinery does not
    apply (``|tr| <= 2``, square discriminant, or triangular ``T``) —
    callers fall back to the bounded search for those easy cases.
    """
    if t.shape != (2, 2) or t.det() != 1:
        raise ValueError("expects a 2x2 determinant-1 matrix")
    tr = t.trace()
    disc = tr * tr - 4
    if disc <= 0:
        return None
    sq = math.isqrt(disc)
    if sq * sq == disc:
        return None
    form = matrix_to_form(t)
    if form is None:
        return None
    for lu_form in lu_trace_forms(tr):
        if forms_equivalent(form, lu_form):
            return True
    return False
