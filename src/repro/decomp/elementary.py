"""Elementary communication matrices (Section 5.1).

In two dimensions the elementary data-flow matrices are

* ``L(l) = [[1, 0], [l, 1]]`` — a *horizontal* communication: processor
  ``(i, j)`` sends to ``(i, j + l i)``-style neighbours along one grid
  row family;
* ``U(k) = [[1, k], [0, 1]]`` — a *vertical* communication.

In higher dimensions an elementary matrix is the identity except for
one row (the paper's ``L_i`` with a single non-trivial row), so the
induced communication moves data parallel to a single axis of the
virtual grid.  A matrix that differs from the identity in one row but
also on the diagonal ("unirow") covers the arbitrary-determinant
extension of Section 5.4.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..linalg import IntMat


def L(l: int) -> IntMat:
    """The 2x2 lower elementary matrix (horizontal communication)."""
    return IntMat([[1, 0], [l, 1]])


def U(k: int) -> IntMat:
    """The 2x2 upper elementary matrix (vertical communication)."""
    return IntMat([[1, k], [0, 1]])


def elementary(n: int, row: int, entries: Sequence[int], diag: int = 1) -> IntMat:
    """The ``n x n`` matrix equal to identity except row ``row``, whose
    entries are ``entries`` (length ``n``) with ``entries[row]`` forced
    to ``diag``.  ``diag == 1`` gives the paper's elementary matrix;
    other values give general unirow factors."""
    if len(entries) != n:
        raise ValueError("entries must have length n")
    rows = IntMat.identity(n).tolist()
    rows[row] = list(entries)
    rows[row][row] = diag
    return IntMat(rows)


def is_elementary(t: IntMat) -> bool:
    """True iff ``t`` is identity except for off-diagonal entries in a
    single row (determinant 1 elementary factor)."""
    if not t.is_square:
        return False
    n = t.nrows
    bad_rows = []
    for i in range(n):
        if t[i, i] != 1:
            return False
        if any(t[i, j] != 0 for j in range(n) if j != i):
            bad_rows.append(i)
    return len(bad_rows) <= 1


def is_unirow(t: IntMat) -> bool:
    """True iff ``t`` differs from the identity in at most one row
    (diagonal entry of that row may be any non-zero integer)."""
    if not t.is_square:
        return False
    n = t.nrows
    bad_rows = set()
    for i in range(n):
        for j in range(n):
            expect = 1 if i == j else 0
            if t[i, j] != expect:
                bad_rows.add(i)
    if len(bad_rows) > 1:
        return False
    for i in bad_rows:
        if t[i, i] == 0:
            return False
    return True


def axis_of_elementary(t: IntMat) -> Optional[int]:
    """The grid axis along which the elementary/unirow communication
    moves data (the index of the non-trivial row), or ``None`` for the
    identity."""
    if not is_unirow(t):
        raise ValueError("not a unirow matrix")
    n = t.nrows
    for i in range(n):
        if t[i, i] != 1 or any(t[i, j] != 0 for j in range(n) if j != i):
            return i
    return None


def kind_2x2(t: IntMat) -> str:
    """Classify a 2x2 elementary matrix as ``'L'``, ``'U'`` or ``'I'``."""
    if t.shape != (2, 2) or not is_elementary(t):
        raise ValueError("not a 2x2 elementary matrix")
    if t.is_identity():
        return "I"
    return "L" if t[1, 0] != 0 else "U"


def verify_factors(t: IntMat, factors: List[IntMat]) -> bool:
    """Check ``product(factors) == t`` (empty product = identity)."""
    acc = IntMat.identity(t.nrows)
    for f in factors:
        acc = acc @ f
    return acc == t
