"""Direct decomposition of 2x2 determinant-1 data-flow matrices into at
most four elementary factors (Section 5.2.1).

With ``T = [[a, b], [c, d]]`` and ``det T = 1``:

* **1 factor**: ``T`` already elementary (``a = d = 1`` and one
  off-diagonal zero).
* **2 factors**: ``T = L U`` iff ``a = 1``; ``T = U L`` iff ``d = 1``.
* **3 factors**: ``T = U(λ) L(c) U(μ)`` iff ``c | a - 1`` (then
  automatically ``c | d - 1`` since ``a d ≡ 1 (mod c)``), with
  ``λ = (a-1)/c`` and ``μ = (d-1)/c``; symmetrically ``T = L U L`` iff
  ``b | d - 1``.
* **4 factors**: ``T = U(k1) L(l1) U(k2) L(l2)`` iff there is a
  factorization ``l1 k2 = d - 1`` with ``l1 ≡ c (mod d)`` and
  ``k2 ≡ b (mod d)`` (then ``l2 = (c - l1)/d``, ``k1 = (b - k2)/d``);
  symmetric ``L U L U`` condition obtained by transposition.  The
  solvability search enumerates the divisors of ``|d - 1|``.

The paper observes (and our exhaustive test confirms) that every 2x2,
``det = 1`` matrix with entries bounded by 5 in absolute value is the
product of at most four elementary factors.
"""

from __future__ import annotations

from typing import List, Optional

from ..linalg import IntMat
from .elementary import L, U, verify_factors


def _divisor_pairs(n: int):
    """All ordered integer pairs ``(p, q)`` with ``p * q == n`` (both
    signs); for ``n == 0`` yields pairs with one factor zero and a small
    companion set — the caller constrains the free factor separately."""
    if n == 0:
        yield (0, 0)
        return
    a = abs(n)
    d = 1
    while d * d <= a:
        if a % d == 0:
            for p in (d, -d):
                q = n // p
                yield (p, q)
                if p != q:
                    yield (q, p)
        d += 1


def decompose_one(t: IntMat) -> Optional[List[IntMat]]:
    """``T`` as a single elementary factor, or ``None``."""
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if a == 1 and d == 1:
        if c == 0:
            return [U(b)] if b != 0 else []
        if b == 0:
            return [L(c)]
    return None


def decompose_two(t: IntMat) -> Optional[List[IntMat]]:
    """``T = L U`` (iff ``a == 1``) or ``T = U L`` (iff ``d == 1``)."""
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if a == 1:
        # [[1, k], [l, 1 + l k]] with k = b, l = c
        return [L(c), U(b)]
    if d == 1:
        return [U(b), L(c)]
    return None


def decompose_three(t: IntMat) -> Optional[List[IntMat]]:
    """``T = U λ · L c · U μ`` when ``c | a - 1``, or the symmetric
    ``L λ · U b · L μ`` when ``b | d - 1``."""
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if c != 0 and (a - 1) % c == 0:
        lam = (a - 1) // c
        mu = (d - 1) // c
        cand = [U(lam), L(c), U(mu)]
        if verify_factors(t, cand):
            return cand
    if b != 0 and (d - 1) % b == 0:
        lam = (d - 1) // b
        mu = (a - 1) // b
        cand = [L(mu), U(b), L(lam)]
        if verify_factors(t, cand):
            return cand
    return None


def _decompose_four_ulul(t: IntMat) -> Optional[List[IntMat]]:
    """``T = U(k1) L(l1) U(k2) L(l2)``.

    From the product: ``d = 1 + l1 k2``, ``c = l1 + l2 d``,
    ``b = k2 + k1 d``.  Enumerate factorizations of ``d - 1``.
    """
    a, b = t[0, 0], t[0, 1]
    c, d = t[1, 0], t[1, 1]
    if d == 0:
        # l1 k2 = -1; c = l1 (so c = ±1), b = k2 = -c; k1 - l2 = c (a - 1)
        if c in (1, -1) and b == -c:
            l2 = 0
            k1 = c * (a - 1)
            cand = [U(k1), L(c), U(-c), L(l2)]
            if verify_factors(t, cand):
                return cand
        return None
    for l1, k2 in _divisor_pairs(d - 1):
        if d == 1:
            # l1 k2 = 0: take l1 = 0, k2 then free; but d = 1 already
            # admits a 2-factor decomposition — let the caller prefer it.
            l1, k2 = 0, b  # c must then be divisible by d=1: always
        if (c - l1) % d != 0 or (b - k2) % d != 0:
            continue
        l2 = (c - l1) // d
        k1 = (b - k2) // d
        cand = [U(k1), L(l1), U(k2), L(l2)]
        if verify_factors(t, cand):
            return cand
    return None


def decompose_four(t: IntMat) -> Optional[List[IntMat]]:
    """``T`` as four elementary factors (``ULUL`` then the transposed
    ``LULU`` attempt)."""
    direct = _decompose_four_ulul(t)
    if direct is not None:
        return direct
    # LULU for T is ULUL for T^T, transposed back (L^T = U and vice versa)
    tt = t.T
    via_t = _decompose_four_ulul(tt)
    if via_t is not None:
        return [f.T for f in reversed(via_t)]
    return None


def decompose_2x2(t: IntMat) -> Optional[List[IntMat]]:
    """Shortest known direct decomposition of a 2x2, det-1 matrix into
    at most four elementary factors; ``None`` if impossible within 4."""
    if t.shape != (2, 2):
        raise ValueError("decompose_2x2 expects a 2x2 matrix")
    if t.det() != 1:
        raise ValueError("decompose_2x2 expects determinant 1")
    if t.is_identity():
        return []
    for fn in (decompose_one, decompose_two, decompose_three, decompose_four):
        out = fn(t)
        if out is not None:
            return out
    return None
