"""Decomposition of arbitrary non-singular data-flow matrices into
unirow factors (Section 5.4).

Determinant-1 matrices decompose into elementary (unit-diagonal)
factors; an arbitrary non-singular ``T`` needs *unirow* factors —
matrices equal to the identity except in one row, whose diagonal entry
may differ from 1.  Each unirow factor still generates a communication
parallel to one axis of the virtual grid, which the grouped partition
of Section 5.3 implements efficiently.

Algorithm:

1. reduce ``T`` to an upper-triangular matrix by integer row operations
   whose inverses are themselves unirow factors: *shears*
   (``row_i += k row_j``), *sign flips* and *swaps* (a swap is a flip
   followed by three shears);
2. peel the triangular remainder: an upper-triangular matrix ``H``
   equals ``R_{n-1} @ ... @ R_0`` where ``R_i`` is the identity with
   row ``i`` replaced by row ``i`` of ``H`` (row ``i`` of ``R_i`` only
   reads rows ``>= i`` of the partial product, which are still unit
   rows at that point).

The final factor list is verified by multiplication before returning.
"""

from __future__ import annotations

from typing import List

from ..linalg import IntMat
from .elementary import elementary, verify_factors


def _shear(n: int, dst: int, src: int, k: int) -> IntMat:
    """Identity plus ``k`` at position (dst, src)."""
    return elementary(n, dst, [k if j == src else 0 for j in range(n)], diag=1)


def _flip(n: int, row: int) -> IntMat:
    """Identity with a -1 at position (row, row)."""
    return elementary(n, row, [0] * n, diag=-1)


def triangular_unirow_factors(h: IntMat, lower: bool = False) -> List[IntMat]:
    """Unirow factorization of a triangular matrix.

    Upper triangular: ``H = R_{n-1} @ ... @ R_0``;
    lower triangular: ``H = R_0 @ ... @ R_{n-1}``;
    each ``R_i`` is identity except row ``i`` = row ``i`` of ``H``.
    """
    n = h.nrows
    factors = [
        elementary(n, i, list(h[i]), diag=h[i, i]) for i in range(n)
    ]
    ordered = factors if lower else list(reversed(factors))
    # drop identity factors
    ordered = [f for f in ordered if not f.is_identity()]
    if not verify_factors(h, ordered):  # pragma: no cover - invariant net
        raise AssertionError("triangular peel failed verification")
    return ordered


def unirow_decomposition(t: IntMat) -> List[IntMat]:
    """Decompose any non-singular integer ``T`` into unirow factors.

    Returns ``[R_1, ..., R_k]`` with ``R_1 @ ... @ R_k == T``, each
    identity-except-one-row.  Exactness is asserted before returning.
    """
    if not t.is_square:
        raise ValueError("unirow_decomposition needs a square matrix")
    if t.det() == 0:
        raise ValueError("unirow_decomposition needs a non-singular matrix")
    n = t.nrows
    work = [list(r) for r in t.rows()]
    # maintain T == product(prefix_ops) @ IntMat(work)
    prefix_ops: List[IntMat] = []

    def shear(dst: int, src: int, k: int) -> None:
        if k == 0:
            return
        work[dst] = [x + k * y for x, y in zip(work[dst], work[src])]
        prefix_ops.append(_shear(n, dst, src, -k))

    def flip(row: int) -> None:
        work[row] = [-x for x in work[row]]
        prefix_ops.append(_flip(n, row))

    def swap(i: int, j: int) -> None:
        # [[0,1],[1,0]] = flip(i) . shear(i,j,1) . shear(j,i,-1) . shear(i,j,1)
        shear(i, j, 1)
        shear(j, i, -1)
        shear(i, j, 1)
        flip(j)

    for col in range(n):
        while True:
            nz = [i for i in range(col, n) if work[i][col] != 0]
            below = [i for i in nz if i > col]
            if not below:
                break
            pivot_row = min(nz, key=lambda i: abs(work[i][col]))
            if pivot_row != col:
                swap(col, pivot_row)
            piv = work[col][col]
            for i in range(col + 1, n):
                if work[i][col] != 0:
                    shear(i, col, -(work[i][col] // piv))
            # each pass strictly shrinks min |non-zero| (Euclid): loop
            # re-checks and terminates when the column is clean below.

    tri = IntMat(work)
    factors = prefix_ops + triangular_unirow_factors(tri, lower=False)
    factors = [f for f in factors if not f.is_identity()]
    if not verify_factors(t, factors):  # pragma: no cover - invariant net
        raise AssertionError("unirow decomposition failed verification")
    return factors
